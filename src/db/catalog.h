#ifndef TENDAX_DB_CATALOG_H_
#define TENDAX_DB_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/heap_table.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Serializes a schema to "name:TYPE,name:TYPE" and back (catalog storage).
std::string SerializeSchema(const Schema& schema);
Result<Schema> ParseSchema(const std::string& text);

/// The system catalog: maps table names/ids to heap tables. Catalog entries
/// are themselves records in a bootstrap heap table (table id 1), so table
/// creation is transactional and recoverable like any other write.
class Catalog {
 public:
  static constexpr uint32_t kCatalogTableId = 1;

  Catalog(BufferPool* pool, TxnManager* txns);

  /// The bootstrap table holding catalog records.
  HeapTable* catalog_table() { return catalog_table_.get(); }

  /// Creates a table inside `txn`. Fails with AlreadyExists on name clash.
  Result<HeapTable*> CreateTable(Transaction* txn, const std::string& name,
                                 const Schema& schema);

  Result<HeapTable*> GetTable(const std::string& name) const
      TENDAX_EXCLUDES(mu_);
  Result<HeapTable*> GetTableById(uint64_t table_id) const
      TENDAX_EXCLUDES(mu_);

  std::vector<std::string> TableNames() const TENDAX_EXCLUDES(mu_);

  /// Rebuilds the in-memory table map from catalog records plus the page
  /// groups discovered by scanning the database file. Called at open.
  Status LoadFromStorage(
      const std::unordered_map<uint32_t, std::vector<PageId>>& pages_by_table);

 private:
  Result<HeapTable*> RegisterTable(uint32_t id, const std::string& name,
                                   Schema schema) TENDAX_EXCLUDES(mu_);

  BufferPool* const pool_;
  TxnManager* const txns_;
  std::unique_ptr<HeapTable> catalog_table_;

  // Never held across catalog_table_ / HeapTable calls; registry only.
  mutable Mutex mu_{"catalog.mu", lockorder::kRankDatabase};
  std::unordered_map<std::string, HeapTable*> by_name_ TENDAX_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<HeapTable>> by_id_
      TENDAX_GUARDED_BY(mu_);
  uint32_t next_table_id_ TENDAX_GUARDED_BY(mu_) = kCatalogTableId + 1;
};

}  // namespace tendax

#endif  // TENDAX_DB_CATALOG_H_

#include "db/recovery.h"

#include <unordered_map>
#include <unordered_set>

namespace tendax {

Status RecoveryManager::Run(const std::vector<LogRecord>& log) {
  // --- Locate the last complete fuzzy checkpoint ---
  //
  // Its end record pins where each pass must start. A kCheckpointBegin
  // without a matching end (crash mid-checkpoint) is simply inert: the
  // passes fall back to the previous complete checkpoint, or to record
  // zero when there is none.
  const LogRecord* checkpoint = nullptr;
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->type == LogType::kCheckpointEnd) {
      checkpoint = &*it;
      break;
    }
  }
  size_t start = 0;
  Lsn redo_lsn = kInvalidLsn;  // 0 = no gate: redo every scanned record
  if (checkpoint != nullptr) {
    stats_.checkpoint_lsn = checkpoint->lsn;
    redo_lsn = checkpoint->checkpoint_redo_lsn;
    if (redo_lsn == kInvalidLsn ||
        redo_lsn > checkpoint->checkpoint_begin_lsn) {
      // A well-formed record has 0 < redo_lsn <= begin_lsn; distrust
      // anything else and fall back to the checkpoint's own start.
      redo_lsn = checkpoint->checkpoint_begin_lsn;
    }
    // Undo must be able to walk every transaction that was in flight at
    // the snapshot back to its first record.
    Lsn scan_lsn = redo_lsn;
    for (const CheckpointTxnEntry& e : checkpoint->att) {
      Lsn first = e.first_lsn == kInvalidLsn ? 1 : e.first_lsn;
      if (first < scan_lsn) scan_lsn = first;
    }
    while (start < log.size() && log[start].lsn < scan_lsn) ++start;
  }
  stats_.records_skipped = start;
  stats_.records_scanned = log.size() - start;

  // --- Analysis ---
  std::unordered_set<uint64_t> seen, winners, finished;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> compensated;
  if (checkpoint != nullptr) {
    // Seed with the snapshot's in-flight transactions: all their records
    // are at/after scan_lsn (that is how scan_lsn was chosen), but a
    // record-free transaction — begin logged, nothing else yet — would
    // otherwise escape the loser count.
    for (const CheckpointTxnEntry& e : checkpoint->att) {
      seen.insert(e.txn);
    }
  }
  for (size_t i = start; i < log.size(); ++i) {
    const LogRecord& rec = log[i];
    if (rec.type == LogType::kCheckpoint ||
        rec.type == LogType::kCheckpointBegin ||
        rec.type == LogType::kCheckpointEnd) {
      continue;  // checkpoint markers are not transactional
    }
    seen.insert(rec.txn.value);
    switch (rec.type) {
      case LogType::kCommit:
        winners.insert(rec.txn.value);
        finished.insert(rec.txn.value);
        break;
      case LogType::kAbort:
        finished.insert(rec.txn.value);
        break;
      case LogType::kCompensation:
        compensated[rec.txn.value].insert(rec.undo_next_lsn);
        break;
      default:
        break;
    }
  }
  stats_.txns_seen = seen.size();
  stats_.winners = winners.size();

  // --- Redo: repeat history in log order ---
  //
  // Records below redo_lsn are skipped outright: by the rec_lsn rule every
  // page they touched was already on disk when the checkpoint's dirty-page
  // table was snapshotted. (Applying them anyway would also be safe — page
  // LSNs make redo idempotent — skipping is the bounded-restart point.)
  for (size_t i = start; i < log.size(); ++i) {
    const LogRecord& rec = log[i];
    if (rec.type != LogType::kUpdate && rec.type != LogType::kCompensation) {
      continue;
    }
    if (checkpoint != nullptr && rec.lsn < redo_lsn) continue;
    HeapTable* table = table_for_(rec.table_id);
    if (table == nullptr) {
      return Status::Corruption("recovery: unknown table " +
                                std::to_string(rec.table_id));
    }
    const std::string& image =
        rec.op == UpdateOp::kDelete ? std::string() : rec.after;
    TENDAX_RETURN_IF_ERROR(table->ApplyChange(
        rec.op, RecordId::Unpack(rec.rid), image, rec.lsn));
    ++stats_.redo_applied;
  }

  // --- Undo losers in reverse log order ---
  //
  // The scanned suffix is complete for undo: scan_lsn lower-bounds the
  // first_lsn of every transaction in the checkpoint's ATT, and anything
  // that began later has all its records above the checkpoint anyway.
  for (auto it = log.rbegin(); it != log.rend() - start; ++it) {
    const LogRecord& rec = *it;
    if (rec.type != LogType::kUpdate) continue;
    if (finished.count(rec.txn.value)) continue;  // winner or aborted cleanly
    auto comp = compensated.find(rec.txn.value);
    if (comp != compensated.end() && comp->second.count(rec.lsn)) {
      continue;  // a pre-crash CLR already undid this update
    }
    UpdateOp inverse;
    const std::string* image;
    switch (rec.op) {
      case UpdateOp::kInsert:
        inverse = UpdateOp::kDelete;
        image = &rec.before;
        break;
      case UpdateOp::kDelete:
        inverse = UpdateOp::kInsert;
        image = &rec.before;
        break;
      case UpdateOp::kUpdate:
        inverse = UpdateOp::kUpdate;
        image = &rec.before;
        break;
      default:
        return Status::Corruption("recovery: unknown update op");
    }
    Lsn clr_lsn = kInvalidLsn;
    if (wal_ != nullptr) {
      LogRecord clr;
      clr.type = LogType::kCompensation;
      clr.txn = rec.txn;
      clr.op = inverse;
      clr.table_id = rec.table_id;
      clr.rid = rec.rid;
      clr.after = *image;
      clr.undo_next_lsn = rec.lsn;
      auto lsn = wal_->Append(&clr);
      if (!lsn.ok()) return lsn.status();
      clr_lsn = *lsn;
    }
    HeapTable* table = table_for_(rec.table_id);
    if (table == nullptr) {
      return Status::Corruption("recovery: unknown table " +
                                std::to_string(rec.table_id));
    }
    TENDAX_RETURN_IF_ERROR(table->ApplyChange(
        inverse, RecordId::Unpack(rec.rid), *image, clr_lsn));
    ++stats_.undo_applied;
  }

  size_t losers = 0;
  for (uint64_t t : seen) {
    if (!finished.count(t)) ++losers;
  }
  stats_.losers = losers;
  return Status::OK();
}

}  // namespace tendax

#include "db/recovery.h"

#include <unordered_map>
#include <unordered_set>

namespace tendax {

Status RecoveryManager::Run(const std::vector<LogRecord>& log) {
  stats_.records_scanned = log.size();

  // --- Analysis ---
  std::unordered_set<uint64_t> seen, winners, finished;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> compensated;
  for (const LogRecord& rec : log) {
    seen.insert(rec.txn.value);
    switch (rec.type) {
      case LogType::kCommit:
        winners.insert(rec.txn.value);
        finished.insert(rec.txn.value);
        break;
      case LogType::kAbort:
        finished.insert(rec.txn.value);
        break;
      case LogType::kCompensation:
        compensated[rec.txn.value].insert(rec.undo_next_lsn);
        break;
      default:
        break;
    }
  }
  stats_.txns_seen = seen.size();
  stats_.winners = winners.size();

  // --- Redo: repeat history in log order ---
  for (const LogRecord& rec : log) {
    if (rec.type != LogType::kUpdate && rec.type != LogType::kCompensation) {
      continue;
    }
    HeapTable* table = table_for_(rec.table_id);
    if (table == nullptr) {
      return Status::Corruption("recovery: unknown table " +
                                std::to_string(rec.table_id));
    }
    const std::string& image =
        rec.op == UpdateOp::kDelete ? std::string() : rec.after;
    TENDAX_RETURN_IF_ERROR(table->ApplyChange(
        rec.op, RecordId::Unpack(rec.rid), image, rec.lsn));
    ++stats_.redo_applied;
  }

  // --- Undo losers in reverse log order ---
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const LogRecord& rec = *it;
    if (rec.type != LogType::kUpdate) continue;
    if (finished.count(rec.txn.value)) continue;  // winner or aborted cleanly
    auto comp = compensated.find(rec.txn.value);
    if (comp != compensated.end() && comp->second.count(rec.lsn)) {
      continue;  // a pre-crash CLR already undid this update
    }
    stats_.losers = 0;  // recomputed below for reporting
    UpdateOp inverse;
    const std::string* image;
    switch (rec.op) {
      case UpdateOp::kInsert:
        inverse = UpdateOp::kDelete;
        image = &rec.before;
        break;
      case UpdateOp::kDelete:
        inverse = UpdateOp::kInsert;
        image = &rec.before;
        break;
      case UpdateOp::kUpdate:
        inverse = UpdateOp::kUpdate;
        image = &rec.before;
        break;
      default:
        return Status::Corruption("recovery: unknown update op");
    }
    Lsn clr_lsn = kInvalidLsn;
    if (wal_ != nullptr) {
      LogRecord clr;
      clr.type = LogType::kCompensation;
      clr.txn = rec.txn;
      clr.op = inverse;
      clr.table_id = rec.table_id;
      clr.rid = rec.rid;
      clr.after = *image;
      clr.undo_next_lsn = rec.lsn;
      auto lsn = wal_->Append(&clr);
      if (!lsn.ok()) return lsn.status();
      clr_lsn = *lsn;
    }
    HeapTable* table = table_for_(rec.table_id);
    if (table == nullptr) {
      return Status::Corruption("recovery: unknown table " +
                                std::to_string(rec.table_id));
    }
    TENDAX_RETURN_IF_ERROR(table->ApplyChange(
        inverse, RecordId::Unpack(rec.rid), *image, clr_lsn));
    ++stats_.undo_applied;
  }

  size_t losers = 0;
  for (uint64_t t : seen) {
    if (!finished.count(t)) ++losers;
  }
  stats_.losers = losers;
  return Status::OK();
}

}  // namespace tendax

#ifndef TENDAX_DB_QUERY_H_
#define TENDAX_DB_QUERY_H_

#include <string>
#include <vector>

#include "db/heap_table.h"
#include "util/result.h"

namespace tendax {

/// Comparison operators for query predicates.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  // substring match, string columns only
};

/// Three-valued comparison result of `lhs op rhs`; NULL operands make the
/// predicate false (SQL semantics).
bool EvaluateCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// A fluent scan-filter-project query over one heap table — the "uniform
/// tool access" the paper gets for free from keeping documents in a DBMS:
///
///   auto rows = TableQuery(chars_table)
///                   .Where("author", CompareOp::kEq, user.value)
///                   .Where("deleted_version", CompareOp::kEq, uint64_t{0})
///                   .Select({"char_id", "codepoint"})
///                   .Limit(100)
///                   .Run();
///
/// Predicates are conjunctive. Column names resolve against the table's
/// schema; name errors surface when the query runs.
class TableQuery {
 public:
  explicit TableQuery(HeapTable* table) : table_(table) {}

  TableQuery& Where(const std::string& column, CompareOp op, Value value);
  TableQuery& Select(std::vector<std::string> columns);
  TableQuery& Limit(size_t n);

  /// Executes the query; rows come back in (page, slot) order.
  Result<std::vector<Record>> Run();

  /// Number of rows matching the predicates (projection ignored).
  Result<uint64_t> Count();

  /// Deletes matching rows inside `txn`; returns how many were removed.
  Result<uint64_t> Delete(Transaction* txn);

 private:
  struct Pred {
    std::string column;
    CompareOp op;
    Value value;
  };

  Status Resolve(std::vector<size_t>* pred_cols,
                 std::vector<size_t>* out_cols) const;
  bool Matches(const Record& record,
               const std::vector<size_t>& pred_cols) const;

  HeapTable* const table_;
  std::vector<Pred> predicates_;
  std::vector<std::string> projection_;
  size_t limit_ = SIZE_MAX;
};

}  // namespace tendax

#endif  // TENDAX_DB_QUERY_H_

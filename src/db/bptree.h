#ifndef TENDAX_DB_BPTREE_H_
#define TENDAX_DB_BPTREE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/buffer_pool.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

struct BPlusTreeStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t splits = 0;
  uint32_t height = 1;
};

/// Page-based B+tree mapping `uint64 key -> uint64 value`, with duplicate
/// keys allowed (entries are unique on the (key, value) pair, ordered
/// lexicographically). Used for secondary indexes such as char-id -> rid.
///
/// Index pages are *not* WAL-logged: indexes are derived data and are
/// rebuilt from their base tables when a database is opened or recovered
/// (see Database::Open). Deletion is lazy (no node merging), the classic
/// simplification for derived structures that are periodically rebuilt.
class BPlusTree {
 public:
  /// Creates an empty tree. `index_id` tags this tree's pages so the
  /// table-discovery scan at open can skip them.
  static Result<std::unique_ptr<BPlusTree>> Create(uint32_t index_id,
                                                   std::string name,
                                                   BufferPool* pool);

  const std::string& name() const { return name_; }
  uint32_t index_id() const { return index_id_; }

  /// Inserts (key, value); duplicate (key, value) pairs are rejected.
  Status Insert(uint64_t key, uint64_t value) TENDAX_EXCLUDES(mu_);

  /// Removes (key, value). NotFound if absent.
  Status Delete(uint64_t key, uint64_t value) TENDAX_EXCLUDES(mu_);

  /// First value stored under exactly `key`, if any.
  Result<uint64_t> GetFirst(uint64_t key) const TENDAX_EXCLUDES(mu_);

  /// True if (key, value) is present.
  bool Contains(uint64_t key, uint64_t value) const TENDAX_EXCLUDES(mu_);

  /// Visits all entries with lo_key <= key <= hi_key in order. Return false
  /// from the callback to stop.
  Status ScanRange(uint64_t lo_key, uint64_t hi_key,
                   const std::function<bool(uint64_t, uint64_t)>& fn) const
      TENDAX_EXCLUDES(mu_);

  /// Total number of entries (O(n)).
  Result<uint64_t> Count() const TENDAX_EXCLUDES(mu_);

  /// Structural integrity check: every reachable node carries this index's
  /// marker, entries are strictly sorted on (key, value), internal children
  /// are valid page ids, all leaves sit at the same depth, and node fill
  /// stays within capacity. Used by `Database::CheckIntegrity` after crash
  /// recovery.
  Status CheckIntegrity() const TENDAX_EXCLUDES(mu_);

  BPlusTreeStats stats() const TENDAX_EXCLUDES(mu_);

 private:
  BPlusTree(uint32_t index_id, std::string name, BufferPool* pool)
      : index_id_(index_id), name_(std::move(name)), pool_(pool) {}

  // All helpers require mu_ held.
  Result<PageId> NewNode(bool leaf) TENDAX_REQUIRES(mu_);
  Result<PageId> FindLeaf(uint64_t key, uint64_t value,
                          std::vector<PageId>* path) const TENDAX_REQUIRES(mu_);
  Status InsertIntoLeaf(PageId leaf, const std::vector<PageId>& path,
                        uint64_t key, uint64_t value) TENDAX_REQUIRES(mu_);
  Status SplitAndPropagate(PageId node, const std::vector<PageId>& path)
      TENDAX_REQUIRES(mu_);
  Status CheckNode(PageId node_id, uint32_t depth, uint32_t* leaf_depth) const
      TENDAX_REQUIRES(mu_);

  const uint32_t index_id_;
  const std::string name_;
  BufferPool* const pool_;

  // Held across buffer-pool fetches (rank kRankBufferPool, below); index
  // pages are latch-free — the tree lock covers their contents.
  mutable Mutex mu_{"bptree.mu", lockorder::kRankTable};
  PageId root_ TENDAX_GUARDED_BY(mu_) = kInvalidPageId;
  BPlusTreeStats stats_ TENDAX_GUARDED_BY(mu_);
};

}  // namespace tendax

#endif  // TENDAX_DB_BPTREE_H_

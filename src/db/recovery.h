#ifndef TENDAX_DB_RECOVERY_H_
#define TENDAX_DB_RECOVERY_H_

#include <functional>
#include <vector>

#include "db/heap_table.h"
#include "storage/wal.h"
#include "util/status.h"

namespace tendax {

/// Outcome counters for one recovery run (reported by bench_storage, E9).
struct RecoveryStats {
  size_t records_scanned = 0;  // records analysis actually visited
  size_t records_skipped = 0;  // records below the checkpoint scan point
  size_t txns_seen = 0;
  size_t winners = 0;   // committed transactions
  size_t losers = 0;    // transactions active at the crash
  size_t redo_applied = 0;
  size_t undo_applied = 0;
  Lsn checkpoint_lsn = kInvalidLsn;  // kCheckpointEnd anchoring this run
};

/// ARIES-lite crash recovery over the logical WAL:
///
///  1. *Analysis*: one scan classifying transactions into winners
///     (commit record present) and losers (no commit/abort completion).
///  2. *Redo*: repeat history — every update and compensation record is
///     re-applied in log order; page LSNs make this idempotent.
///  3. *Undo*: losers' updates are rolled back in reverse log order,
///     skipping updates that a pre-crash compensation record already
///     undid, and logging fresh CLRs so recovery itself is restartable.
///
/// When the log contains a complete fuzzy checkpoint (kCheckpointEnd), all
/// three passes start from it rather than from record zero:
///   scan_lsn = min(checkpoint redo_lsn, min ATT first_lsn)
/// Every record below scan_lsn is provably irrelevant — its transaction
/// completed before the checkpoint (so it needs no undo) and its page
/// effects were on disk by the time the dirty-page table was snapshotted
/// (so it needs no redo). Redo additionally skips [scan_lsn, redo_lsn),
/// which undo may still need to read but whose page effects are durable.
/// This is what makes restart time O(working set) instead of O(history).
class RecoveryManager {
 public:
  /// `table_for` resolves a table id to a HeapTable to apply changes to
  /// (recovery-time stub tables are fine: redo/undo is bytes-level).
  /// `wal` receives the CLRs written during undo; may be null in tests.
  RecoveryManager(std::function<HeapTable*(uint64_t)> table_for, Wal* wal)
      : table_for_(std::move(table_for)), wal_(wal) {}

  Status Run(const std::vector<LogRecord>& log);

  const RecoveryStats& stats() const { return stats_; }

 private:
  std::function<HeapTable*(uint64_t)> table_for_;
  Wal* wal_;
  RecoveryStats stats_;
};

}  // namespace tendax

#endif  // TENDAX_DB_RECOVERY_H_

#include "db/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/coding.h"
#include "util/logging.h"

namespace tendax {

namespace {
constexpr size_t kTableIdOff = 0;
constexpr size_t kNextPageOff = 4;
constexpr size_t kNumSlotsOff = 8;
constexpr size_t kFreePtrOff = 10;
}  // namespace

bool SlottedPage::IsInitialized() const { return free_ptr() != 0; }

void SlottedPage::Init(uint32_t table_id) {
  EncodeFixed32(payload() + kTableIdOff, table_id);
  EncodeFixed32(payload() + kNextPageOff, kInvalidPageId);
  set_num_slots(0);
  set_free_ptr(static_cast<uint16_t>(Page::payload_size()));
}

uint32_t SlottedPage::table_id() const {
  return DecodeFixed32(payload() + kTableIdOff);
}

PageId SlottedPage::next_page() const {
  return DecodeFixed32(payload() + kNextPageOff);
}

void SlottedPage::set_next_page(PageId next) {
  EncodeFixed32(payload() + kNextPageOff, next);
}

uint16_t SlottedPage::num_slots() const {
  return DecodeFixed16(payload() + kNumSlotsOff);
}

uint16_t SlottedPage::free_ptr() const {
  return DecodeFixed16(payload() + kFreePtrOff);
}

void SlottedPage::set_free_ptr(uint16_t v) {
  EncodeFixed16(payload() + kFreePtrOff, v);
}

void SlottedPage::set_num_slots(uint16_t v) {
  EncodeFixed16(payload() + kNumSlotsOff, v);
}

uint16_t SlottedPage::slot_offset(SlotId slot) const {
  return DecodeFixed16(payload() + kHeaderSize() + slot * kSlotSize);
}

uint16_t SlottedPage::slot_len(SlotId slot) const {
  return DecodeFixed16(payload() + kHeaderSize() + slot * kSlotSize + 2);
}

void SlottedPage::set_slot(SlotId slot, uint16_t offset, uint16_t len) {
  EncodeFixed16(payload() + kHeaderSize() + slot * kSlotSize, offset);
  EncodeFixed16(payload() + kHeaderSize() + slot * kSlotSize + 2, len);
}

size_t SlottedPage::ContiguousFree() const {
  size_t slots_end = kHeaderSize() + num_slots() * kSlotSize;
  size_t data_start = free_ptr();
  return data_start > slots_end ? data_start - slots_end : 0;
}

size_t SlottedPage::FreeSpace() const {
  if (!IsInitialized()) return Page::payload_size() - kHeaderSize() - kSlotSize;
  size_t reclaimable = 0;
  bool free_slot = false;
  for (SlotId s = 0; s < num_slots(); ++s) {
    if (slot_offset(s) == kDeletedOffset) free_slot = true;
  }
  // Deleted record bytes are reclaimable via compaction.
  size_t live = 0;
  for (SlotId s = 0; s < num_slots(); ++s) {
    if (slot_offset(s) != kDeletedOffset) live += slot_len(s);
  }
  size_t data_region = Page::payload_size() - free_ptr();
  reclaimable = data_region - live;
  size_t contiguous = ContiguousFree();
  size_t total = contiguous + reclaimable;
  size_t slot_cost = free_slot ? 0 : kSlotSize;
  return total > slot_cost ? total - slot_cost : 0;
}

Result<SlotId> SlottedPage::Insert(const Slice& data) {
  if (!IsInitialized()) {
    return Status::Internal("slotted page not initialized");
  }
  if (data.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record too large for a page");
  }
  // Reuse a deleted slot if any; otherwise grow the directory.
  SlotId slot = num_slots();
  bool reuse = false;
  for (SlotId s = 0; s < num_slots(); ++s) {
    if (slot_offset(s) == kDeletedOffset) {
      slot = s;
      reuse = true;
      break;
    }
  }
  size_t need = data.size() + (reuse ? 0 : kSlotSize);
  if (ContiguousFree() < need) {
    if (FreeSpace() < data.size()) {
      return Status::OutOfRange("page full");
    }
    Compact();
    if (ContiguousFree() < need) {
      return Status::OutOfRange("page full");
    }
  }
  if (!reuse) set_num_slots(num_slots() + 1);
  uint16_t offset = EmplaceData(data);
  set_slot(slot, offset, static_cast<uint16_t>(data.size()));
  return slot;
}

Status SlottedPage::InsertAt(SlotId slot, const Slice& data) {
  if (!IsInitialized()) {
    return Status::Internal("slotted page not initialized");
  }
  if (data.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record too large for a page");
  }
  if (slot < num_slots() && slot_offset(slot) != kDeletedOffset) {
    return Status::AlreadyExists("slot occupied: " + std::to_string(slot));
  }
  size_t new_slots = slot >= num_slots() ? slot + 1 - num_slots() : 0;
  size_t need = data.size() + new_slots * kSlotSize;
  if (ContiguousFree() < need) {
    Compact();
    if (ContiguousFree() < need) {
      return Status::OutOfRange("page full for InsertAt");
    }
  }
  if (slot >= num_slots()) {
    for (SlotId s = num_slots(); s <= slot; ++s) {
      set_slot(s, kDeletedOffset, 0);
    }
    set_num_slots(slot + 1);
  }
  uint16_t offset = EmplaceData(data);
  set_slot(slot, offset, static_cast<uint16_t>(data.size()));
  return Status::OK();
}

Result<Slice> SlottedPage::Get(SlotId slot) const {
  if (!IsInitialized() || slot >= num_slots() ||
      slot_offset(slot) == kDeletedOffset) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  return Slice(payload() + slot_offset(slot), slot_len(slot));
}

Status SlottedPage::Delete(SlotId slot) {
  if (!IsInitialized() || slot >= num_slots() ||
      slot_offset(slot) == kDeletedOffset) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  set_slot(slot, kDeletedOffset, 0);
  return Status::OK();
}

Status SlottedPage::Update(SlotId slot, const Slice& data) {
  if (!IsInitialized() || slot >= num_slots() ||
      slot_offset(slot) == kDeletedOffset) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  uint16_t old_len = slot_len(slot);
  if (data.size() <= old_len) {
    memcpy(payload() + slot_offset(slot), data.data(), data.size());
    set_slot(slot, slot_offset(slot), static_cast<uint16_t>(data.size()));
    return Status::OK();
  }
  // Relocate within the page if possible.
  set_slot(slot, kDeletedOffset, 0);  // temporarily free old space
  if (ContiguousFree() < data.size()) {
    Compact();
  }
  if (ContiguousFree() < data.size()) {
    // Roll back the temporary free so the caller can relocate the record.
    // After Compact() the old bytes may have moved, so re-check: if compact
    // happened the old slot data is gone — reinsert the old image is not
    // possible here; instead callers treat kOutOfRange as "delete+insert
    // elsewhere" and never read the old slot again. To keep the page
    // consistent we must not lose the record before the caller saved it,
    // so Update callers always hold the old image already (they read it to
    // build the WAL before-image). We therefore simply report no-fit.
    return Status::OutOfRange("record does not fit in page after update");
  }
  uint16_t offset = EmplaceData(data);
  set_slot(slot, offset, static_cast<uint16_t>(data.size()));
  return Status::OK();
}

bool SlottedPage::IsLive(SlotId slot) const {
  return IsInitialized() && slot < num_slots() &&
         slot_offset(slot) != kDeletedOffset;
}

Status SlottedPage::Validate() const {
  if (!IsInitialized()) return Status::OK();
  const size_t payload_size = Page::payload_size();
  const size_t data_start = free_ptr();
  const size_t slots_end = kHeaderSize() + num_slots() * kSlotSize;
  if (data_start > payload_size) {
    return Status::Corruption("slotted page: free_ptr " +
                              std::to_string(data_start) +
                              " beyond payload end");
  }
  if (slots_end > data_start) {
    return Status::Corruption(
        "slotted page: slot directory (" + std::to_string(num_slots()) +
        " slots) overlaps data region at " + std::to_string(data_start));
  }
  // Collect live records, check bounds, then check pairwise overlap.
  struct Extent {
    size_t begin;
    size_t end;
    SlotId slot;
  };
  std::vector<Extent> extents;
  for (SlotId s = 0; s < num_slots(); ++s) {
    if (slot_offset(s) == kDeletedOffset) continue;
    size_t begin = slot_offset(s);
    size_t end = begin + slot_len(s);
    if (begin < data_start || end > payload_size) {
      return Status::Corruption("slotted page: slot " + std::to_string(s) +
                                " extent [" + std::to_string(begin) + "," +
                                std::to_string(end) +
                                ") escapes the data region");
    }
    extents.push_back(Extent{begin, end, s});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].begin < extents[i - 1].end) {
      return Status::Corruption(
          "slotted page: slots " + std::to_string(extents[i - 1].slot) +
          " and " + std::to_string(extents[i].slot) + " overlap");
    }
  }
  return Status::OK();
}

void SlottedPage::Compact() {
  char buffer[kPageSize];
  uint16_t write_ptr = static_cast<uint16_t>(Page::payload_size());
  struct SlotFix {
    SlotId slot;
    uint16_t offset;
    uint16_t len;
  };
  std::vector<SlotFix> fixes;
  for (SlotId s = 0; s < num_slots(); ++s) {
    if (slot_offset(s) == kDeletedOffset) continue;
    uint16_t len = slot_len(s);
    write_ptr = static_cast<uint16_t>(write_ptr - len);
    memcpy(buffer + write_ptr, payload() + slot_offset(s), len);
    fixes.push_back(SlotFix{s, write_ptr, len});
  }
  memcpy(payload() + write_ptr, buffer + write_ptr,
         Page::payload_size() - write_ptr);
  for (const SlotFix& f : fixes) set_slot(f.slot, f.offset, f.len);
  set_free_ptr(write_ptr);
}

uint16_t SlottedPage::EmplaceData(const Slice& data) {
  TENDAX_CHECK(ContiguousFree() >= data.size());
  uint16_t offset = static_cast<uint16_t>(free_ptr() - data.size());
  memcpy(payload() + offset, data.data(), data.size());
  set_free_ptr(offset);
  return offset;
}

}  // namespace tendax

#ifndef TENDAX_DB_SCHEMA_H_
#define TENDAX_DB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace tendax {

/// Column data types supported by the relational substrate.
enum class ColumnType : uint8_t {
  kUint64 = 1,
  kInt64 = 2,
  kBool = 3,
  kDouble = 4,
  kString = 5,  // also used for blobs
};

const char* ColumnTypeName(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or kNotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace tendax

#endif  // TENDAX_DB_SCHEMA_H_

#include "db/bptree.h"

#include <vector>

#include "util/coding.h"
#include "util/logging.h"

namespace tendax {

namespace {

// Node layout inside Page::payload():
//   off 0: marker u32 (0x80000000 | index_id) -- skipped by table discovery
//   off 4: is_leaf u8, off 5: unused
//   off 6: num_entries u16
//   off 8: next_leaf u32 (leaf) | leftmost_child u32 (internal)
//   off 12: entries
// Leaf entry: key u64, val u64 (16 bytes).
// Internal entry: key u64, val u64, child u32 (20 bytes); `child` holds the
// subtree whose entries are >= (key, val).
constexpr size_t kMarkerOff = 0;
constexpr size_t kLeafOff = 4;
constexpr size_t kNumOff = 6;
constexpr size_t kLinkOff = 8;
constexpr size_t kEntriesOff = 12;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 20;

constexpr size_t kLeafCapacity =
    (Page::payload_size() - kEntriesOff) / kLeafEntrySize;
constexpr size_t kInternalCapacity =
    (Page::payload_size() - kEntriesOff) / kInternalEntrySize;

struct Entry {
  uint64_t key;
  uint64_t val;
  uint32_t child;  // internal nodes only

  bool LessThan(uint64_t k, uint64_t v) const {
    return key < k || (key == k && val < v);
  }
  bool Equals(uint64_t k, uint64_t v) const { return key == k && val == v; }
};

class NodeView {
 public:
  explicit NodeView(Page* page) : p_(page->payload()) {}

  void Init(uint32_t index_id, bool leaf) {
    EncodeFixed32(p_ + kMarkerOff, 0x80000000u | index_id);
    p_[kLeafOff] = leaf ? 1 : 0;
    EncodeFixed16(p_ + kNumOff, 0);
    EncodeFixed32(p_ + kLinkOff, kInvalidPageId);
  }

  bool is_leaf() const { return p_[kLeafOff] != 0; }
  uint16_t num() const { return DecodeFixed16(p_ + kNumOff); }
  void set_num(uint16_t n) { EncodeFixed16(p_ + kNumOff, n); }
  PageId link() const { return DecodeFixed32(p_ + kLinkOff); }
  void set_link(PageId id) { EncodeFixed32(p_ + kLinkOff, id); }

  size_t entry_size() const {
    return is_leaf() ? kLeafEntrySize : kInternalEntrySize;
  }
  size_t capacity() const {
    return is_leaf() ? kLeafCapacity : kInternalCapacity;
  }

  Entry Get(size_t i) const {
    const char* e = p_ + kEntriesOff + i * entry_size();
    Entry out;
    out.key = DecodeFixed64(e);
    out.val = DecodeFixed64(e + 8);
    out.child = is_leaf() ? kInvalidPageId : DecodeFixed32(e + 16);
    return out;
  }

  void Set(size_t i, const Entry& e) {
    char* dst = p_ + kEntriesOff + i * entry_size();
    EncodeFixed64(dst, e.key);
    EncodeFixed64(dst + 8, e.val);
    if (!is_leaf()) EncodeFixed32(dst + 16, e.child);
  }

  /// Index of the first entry >= (key, val), i.e. the insert position.
  size_t LowerBound(uint64_t key, uint64_t val) const {
    size_t lo = 0, hi = num();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Get(mid).LessThan(key, val)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void InsertAt(size_t i, const Entry& e) {
    const size_t es = entry_size();
    char* base = p_ + kEntriesOff;
    memmove(base + (i + 1) * es, base + i * es, (num() - i) * es);
    set_num(num() + 1);
    Set(i, e);
  }

  void RemoveAt(size_t i) {
    const size_t es = entry_size();
    char* base = p_ + kEntriesOff;
    memmove(base + i * es, base + (i + 1) * es, (num() - i - 1) * es);
    set_num(num() - 1);
  }

  /// Child to follow for (key, val) in an internal node.
  PageId ChildFor(uint64_t key, uint64_t val) const {
    size_t i = LowerBound(key, val);
    // Entries at j < i are < target; entry at i (if equal) also leads right.
    if (i < num() && Get(i).Equals(key, val)) {
      return Get(i).child;
    }
    if (i == 0) return link();  // leftmost child
    return Get(i - 1).child;
  }

 private:
  char* p_;
};

}  // namespace

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(uint32_t index_id,
                                                     std::string name,
                                                     BufferPool* pool) {
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(index_id, std::move(name), pool));
  MutexLock lock(tree->mu_);
  auto root = tree->NewNode(/*leaf=*/true);
  if (!root.ok()) return root.status();
  tree->root_ = *root;
  return tree;
}

Result<PageId> BPlusTree::NewNode(bool leaf) {
  auto page = pool_->NewPage();
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  NodeView node(guard.get());
  node.Init(index_id_, leaf);
  guard.MarkDirty();
  return guard->id();
}

Result<PageId> BPlusTree::FindLeaf(uint64_t key, uint64_t value,
                                   std::vector<PageId>* path) const {
  PageId current = root_;
  while (true) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView node(guard.get());
    if (node.is_leaf()) return current;
    if (path != nullptr) path->push_back(current);
    current = node.ChildFor(key, value);
    if (current == kInvalidPageId) {
      return Status::Corruption("bptree: dangling child pointer");
    }
  }
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  MutexLock lock(mu_);
  std::vector<PageId> path;
  auto leaf = FindLeaf(key, value, &path);
  if (!leaf.ok()) return leaf.status();
  TENDAX_RETURN_IF_ERROR(InsertIntoLeaf(*leaf, path, key, value));
  ++stats_.inserts;
  return Status::OK();
}

Status BPlusTree::InsertIntoLeaf(PageId leaf_id,
                                 const std::vector<PageId>& path,
                                 uint64_t key, uint64_t value) {
  {
    auto page = pool_->FetchPage(leaf_id);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView node(guard.get());
    size_t pos = node.LowerBound(key, value);
    if (pos < node.num() && node.Get(pos).Equals(key, value)) {
      return Status::AlreadyExists("bptree: duplicate entry");
    }
    if (node.num() < node.capacity()) {
      node.InsertAt(pos, Entry{key, value, kInvalidPageId});
      guard.MarkDirty();
      return Status::OK();
    }
  }
  TENDAX_RETURN_IF_ERROR(SplitAndPropagate(leaf_id, path));
  // Retry after the split (the tree shape changed; re-descend).
  std::vector<PageId> new_path;
  auto leaf = FindLeaf(key, value, &new_path);
  if (!leaf.ok()) return leaf.status();
  return InsertIntoLeaf(*leaf, new_path, key, value);
}

Status BPlusTree::SplitAndPropagate(PageId node_id,
                                    const std::vector<PageId>& path) {
  ++stats_.splits;
  auto right_res = NewNode(/*leaf=*/true);  // re-tagged below
  if (!right_res.ok()) return right_res.status();
  PageId right_id = *right_res;

  uint64_t sep_key = 0, sep_val = 0;

  {
    auto left_page = pool_->FetchPage(node_id);
    if (!left_page.ok()) return left_page.status();
    PageGuard left_guard(pool_, *left_page);
    NodeView left(left_guard.get());

    auto right_page = pool_->FetchPage(right_id);
    if (!right_page.ok()) return right_page.status();
    PageGuard right_guard(pool_, *right_page);
    NodeView right(right_guard.get());
    right.Init(index_id_, left.is_leaf());

    size_t n = left.num();
    size_t mid = n / 2;
    if (left.is_leaf()) {
      // Move entries [mid, n) to the right node.
      for (size_t i = mid; i < n; ++i) {
        right.Set(i - mid, left.Get(i));
      }
      right.set_num(static_cast<uint16_t>(n - mid));
      left.set_num(static_cast<uint16_t>(mid));
      Entry first_right = right.Get(0);
      sep_key = first_right.key;
      sep_val = first_right.val;
      right.set_link(left.link());
      left.set_link(right_id);
    } else {
      // Promote the middle entry; its child becomes right's leftmost child.
      Entry promoted = left.Get(mid);
      sep_key = promoted.key;
      sep_val = promoted.val;
      right.set_link(promoted.child);
      for (size_t i = mid + 1; i < n; ++i) {
        right.Set(i - mid - 1, left.Get(i));
      }
      right.set_num(static_cast<uint16_t>(n - mid - 1));
      left.set_num(static_cast<uint16_t>(mid));
    }
    left_guard.MarkDirty();
    right_guard.MarkDirty();
  }

  // Insert the separator into the parent (or grow a new root).
  if (path.empty()) {
    auto new_root_res = NewNode(/*leaf=*/false);
    if (!new_root_res.ok()) return new_root_res.status();
    auto page = pool_->FetchPage(*new_root_res);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView root(guard.get());
    root.set_link(node_id);  // leftmost child
    root.InsertAt(0, Entry{sep_key, sep_val, right_id});
    guard.MarkDirty();
    root_ = *new_root_res;
    ++stats_.height;
    return Status::OK();
  }

  PageId parent_id = path.back();
  {
    auto page = pool_->FetchPage(parent_id);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView parent(guard.get());
    if (parent.num() < parent.capacity()) {
      size_t pos = parent.LowerBound(sep_key, sep_val);
      parent.InsertAt(pos, Entry{sep_key, sep_val, right_id});
      guard.MarkDirty();
      return Status::OK();
    }
  }
  // Parent full: split it first, then re-descend to place the separator.
  std::vector<PageId> parent_path(path.begin(), path.end() - 1);
  TENDAX_RETURN_IF_ERROR(SplitAndPropagate(parent_id, parent_path));
  std::vector<PageId> fresh_path;
  PageId current = root_;
  // Descend to the internal node that should hold the separator.
  while (true) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView node(guard.get());
    if (node.is_leaf()) {
      return Status::Corruption("bptree: separator descent reached a leaf");
    }
    PageId next = node.ChildFor(sep_key, sep_val);
    // The separator belongs in the parent of the split node: stop when the
    // child we would follow is one of the two halves.
    if (next == node_id || next == right_id) {
      if (node.num() >= node.capacity()) {
        return Status::Corruption("bptree: parent still full after split");
      }
      size_t pos = node.LowerBound(sep_key, sep_val);
      node.InsertAt(pos, Entry{sep_key, sep_val, right_id});
      guard.MarkDirty();
      return Status::OK();
    }
    current = next;
  }
}

Status BPlusTree::Delete(uint64_t key, uint64_t value) {
  MutexLock lock(mu_);
  auto leaf = FindLeaf(key, value, nullptr);
  if (!leaf.ok()) return leaf.status();
  auto page = pool_->FetchPage(*leaf);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  NodeView node(guard.get());
  size_t pos = node.LowerBound(key, value);
  if (pos >= node.num() || !node.Get(pos).Equals(key, value)) {
    return Status::NotFound("bptree: entry not found");
  }
  node.RemoveAt(pos);
  guard.MarkDirty();
  ++stats_.deletes;
  return Status::OK();
}

Result<uint64_t> BPlusTree::GetFirst(uint64_t key) const {
  uint64_t found = 0;
  bool any = false;
  TENDAX_RETURN_IF_ERROR(ScanRange(key, key, [&](uint64_t, uint64_t v) {
    found = v;
    any = true;
    return false;
  }));
  if (!any) return Status::NotFound("bptree: key not found");
  return found;
}

bool BPlusTree::Contains(uint64_t key, uint64_t value) const {
  bool found = false;
  Status st = ScanRange(key, key, [&](uint64_t, uint64_t v) {
    if (v == value) {
      found = true;
      return false;
    }
    return true;
  });
  return st.ok() && found;
}

Status BPlusTree::ScanRange(
    uint64_t lo_key, uint64_t hi_key,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  MutexLock lock(mu_);
  auto leaf = FindLeaf(lo_key, 0, nullptr);
  if (!leaf.ok()) return leaf.status();
  PageId current = *leaf;
  while (current != kInvalidPageId) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    NodeView node(guard.get());
    size_t start = node.LowerBound(lo_key, 0);
    for (size_t i = start; i < node.num(); ++i) {
      Entry e = node.Get(i);
      if (e.key > hi_key) return Status::OK();
      if (!fn(e.key, e.val)) return Status::OK();
    }
    current = node.link();
  }
  return Status::OK();
}

Result<uint64_t> BPlusTree::Count() const {
  uint64_t n = 0;
  TENDAX_RETURN_IF_ERROR(
      ScanRange(0, UINT64_MAX, [&](uint64_t, uint64_t) {
        ++n;
        return true;
      }));
  return n;
}

Status BPlusTree::CheckIntegrity() const {
  MutexLock lock(mu_);
  if (root_ == kInvalidPageId) {
    return Status::Corruption("bptree " + name_ + ": no root");
  }
  uint32_t leaf_depth = 0;  // 0 = not yet seen
  return CheckNode(root_, 1, &leaf_depth);
}

Status BPlusTree::CheckNode(PageId node_id, uint32_t depth,
                            uint32_t* leaf_depth) const {
  if (depth > 64) {
    return Status::Corruption("bptree " + name_ + ": depth exceeds 64 (cycle?)");
  }
  auto page = pool_->FetchPage(node_id);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  NodeView node(guard.get());

  uint32_t marker = DecodeFixed32(guard->payload() + kMarkerOff);
  if (marker != (0x80000000u | index_id_)) {
    return Status::Corruption("bptree " + name_ + ": page " +
                              std::to_string(node_id) + " has foreign marker");
  }
  if (node.num() > node.capacity()) {
    return Status::Corruption("bptree " + name_ + ": page " +
                              std::to_string(node_id) + " overfull (" +
                              std::to_string(node.num()) + " entries)");
  }
  for (size_t i = 1; i < node.num(); ++i) {
    Entry prev = node.Get(i - 1);
    Entry cur = node.Get(i);
    if (!prev.LessThan(cur.key, cur.val)) {
      return Status::Corruption("bptree " + name_ + ": page " +
                                std::to_string(node_id) +
                                " entries out of order at " +
                                std::to_string(i));
    }
  }

  if (node.is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("bptree " + name_ + ": leaf " +
                                std::to_string(node_id) + " at depth " +
                                std::to_string(depth) + ", expected " +
                                std::to_string(*leaf_depth));
    }
    return Status::OK();
  }

  // Internal: leftmost child plus one child per entry, all recursed.
  if (node.link() == kInvalidPageId) {
    return Status::Corruption("bptree " + name_ + ": internal page " +
                              std::to_string(node_id) +
                              " missing leftmost child");
  }
  TENDAX_RETURN_IF_ERROR(CheckNode(node.link(), depth + 1, leaf_depth));
  for (size_t i = 0; i < node.num(); ++i) {
    PageId child = node.Get(i).child;
    if (child == kInvalidPageId) {
      return Status::Corruption("bptree " + name_ + ": internal page " +
                                std::to_string(node_id) +
                                " has a dangling child at entry " +
                                std::to_string(i));
    }
    TENDAX_RETURN_IF_ERROR(CheckNode(child, depth + 1, leaf_depth));
  }
  return Status::OK();
}

BPlusTreeStats BPlusTree::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace tendax

#include "db/checkpointer.h"

#include <algorithm>
#include <chrono>

namespace tendax {

const char* CheckpointPhaseName(CheckpointPhase phase) {
  switch (phase) {
    case CheckpointPhase::kBeforeBegin:
      return "BeforeBegin";
    case CheckpointPhase::kAfterBeginRecord:
      return "AfterBeginRecord";
    case CheckpointPhase::kAfterDirtyFlush:
      return "AfterDirtyFlush";
    case CheckpointPhase::kAfterEndRecord:
      return "AfterEndRecord";
    case CheckpointPhase::kAfterTruncate:
      return "AfterTruncate";
  }
  return "Unknown";
}

Checkpointer::Checkpointer(Wal* wal, BufferPool* pool, TxnManager* txns,
                           MetricsRegistry* metrics, CheckpointOptions options)
    : wal_(wal), pool_(pool), txns_(txns), options_(std::move(options)) {
  if (metrics != nullptr) {
    m_completed_ = metrics->counter("checkpoint.completed");
    m_failed_ = metrics->counter("checkpoint.failed");
    m_pages_flushed_ = metrics->counter("checkpoint.pages_flushed");
    m_pages_busy_ = metrics->counter("checkpoint.pages_skipped_busy");
    m_duration_micros_ = metrics->histogram("checkpoint.duration_micros");
    m_pages_per_checkpoint_ = metrics->histogram("checkpoint.pages");
  }
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  if (options_.interval_micros == 0 && options_.dirty_page_threshold == 0) {
    return;
  }
  MutexLock lock(state_mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread(&Checkpointer::Loop, this);
}

void Checkpointer::Stop() {
  {
    MutexLock lock(state_mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(state_mu_);
  started_ = false;
}

void Checkpointer::Loop() {
  // The threshold trigger has no event to wake on (pages go dirty without
  // notifying anyone), so threshold-only configurations poll at a coarse
  // beat instead of spinning.
  const uint64_t wait_micros =
      options_.interval_micros > 0 ? options_.interval_micros : 1000;
  for (;;) {
    bool due_by_timer = false;
    {
      MutexLock lock(state_mu_);
      if (stop_) return;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(wait_micros);
      while (!stop_) {
        if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
          due_by_timer = options_.interval_micros > 0;
          break;
        }
      }
      if (stop_) return;
    }
    const bool due_by_threshold =
        options_.dirty_page_threshold > 0 &&
        pool_->DirtyCount() >= options_.dirty_page_threshold;
    if (!due_by_timer && !due_by_threshold) continue;
    if (!wal_->poison_status().ok()) {
      // Fail-stopped WAL: nothing can be made durable until reopen, so
      // keep idling instead of burning the log with doomed attempts.
      continue;
    }
    // The outcome is recorded in stats/metrics; the loop itself has no
    // caller to report to and simply tries again next beat.
    (void)CheckpointNow();
  }
}

Status Checkpointer::CheckpointNow() {
  MutexLock run(run_mu_);
  Status st = RunOnce();
  if (st.ok()) {
    MetricAdd(m_completed_);
    MutexLock lock(state_mu_);
    ++stats_.completed;
  } else {
    MetricAdd(m_failed_);
    MutexLock lock(state_mu_);
    ++stats_.failed;
  }
  return st;
}

void Checkpointer::Hook(uint64_t index, CheckpointPhase phase) {
  if (options_.hooks) options_.hooks->OnCheckpointPhase(index, phase);
}

Status Checkpointer::RunOnce() {
  TENDAX_RETURN_IF_ERROR(wal_->poison_status());
  const uint64_t index = ++index_;
  // Armed before the begin record so failures in any phase still record a
  // duration sample via RAII.
  ScopedTimer timer(m_duration_micros_);

  Hook(index, CheckpointPhase::kBeforeBegin);

  // 1. Open the checkpoint.
  LogRecord begin;
  begin.type = LogType::kCheckpointBegin;
  auto begin_lsn = wal_->Append(&begin);
  if (!begin_lsn.ok()) return begin_lsn.status();

  // 2. Fuzzy snapshots. Taken after B so any record that slips in between
  //    is either covered by the snapshot or lands above B — both safe: a
  //    page dirtied by a record < B after the DPT snapshot was dirty (or
  //    durable) at snapshot time, and redo_lsn is capped at B below.
  std::vector<CheckpointTxnEntry> att = txns_->ActiveTxnTable();
  std::vector<CheckpointPageEntry> dpt = pool_->DirtyPageTable();

  Hook(index, CheckpointPhase::kAfterBeginRecord);

  // 3. Write back the pages dirtied before the checkpoint. Pinned pages
  //    are retried briefly, then left alone — they stay in the re-taken
  //    DPT and simply hold redo_lsn (and truncation) back a little.
  uint64_t flushed = 0;
  uint64_t busy = 0;
  for (const CheckpointPageEntry& e : dpt) {
    bool clean = false;
    for (int attempt = 0; attempt < 64 && !clean; ++attempt) {
      auto r = pool_->FlushPageIfIdle(static_cast<PageId>(e.page));
      if (!r.ok()) return r.status();
      clean = *r;
      if (!clean) std::this_thread::yield();
    }
    if (clean) {
      ++flushed;
    } else {
      ++busy;
    }
  }
  MetricAdd(m_pages_flushed_, flushed);
  MetricAdd(m_pages_busy_, busy);
  MetricRecord(m_pages_per_checkpoint_, flushed);

  Hook(index, CheckpointPhase::kAfterDirtyFlush);

  // 4. Re-snapshot the DPT and compute the redo point. Pages dirtied since
  //    the first snapshot appear here with their own rec_lsn; anything
  //    dirtied by a record below B after this snapshot cannot exist (that
  //    record's page was either still dirty — so it is in this snapshot —
  //    or its effect was already durable), and records above B take care
  //    of themselves. Hence redo_lsn = min(B, min rec_lsn) is safe.
  std::vector<CheckpointPageEntry> dpt_now = pool_->DirtyPageTable();
  Lsn redo_lsn = *begin_lsn;
  for (const CheckpointPageEntry& e : dpt_now) {
    if (e.rec_lsn != kInvalidLsn && e.rec_lsn < redo_lsn) {
      redo_lsn = e.rec_lsn;
    }
  }

  // 5. Close the checkpoint; the end record must be durable before any
  //    truncation may rely on it.
  LogRecord end;
  end.type = LogType::kCheckpointEnd;
  end.checkpoint_begin_lsn = *begin_lsn;
  end.checkpoint_redo_lsn = redo_lsn;
  end.att = std::move(att);
  end.dpt = std::move(dpt_now);
  auto end_lsn = wal_->Append(&end);
  if (!end_lsn.ok()) return end_lsn.status();
  TENDAX_RETURN_IF_ERROR(wal_->Flush(*end_lsn));

  Hook(index, CheckpointPhase::kAfterEndRecord);

  // 6. Truncate. The bound also respects the oldest in-flight transaction:
  //    undo after a crash must still be able to walk its whole chain.
  Lsn bound = redo_lsn;
  for (const CheckpointTxnEntry& e : end.att) {
    Lsn first = e.first_lsn == kInvalidLsn ? 1 : e.first_lsn;
    if (first < bound) bound = first;
  }
  if (wal_->segmented()) {
    // Seal the segment holding the end record so everything older becomes
    // a deletion candidate at the *next* checkpoint, and this one can drop
    // whatever previous checkpoints sealed.
    TENDAX_RETURN_IF_ERROR(wal_->RotateSegmentNow());
    auto freed = wal_->TruncateSegmentsBelow(bound);
    if (!freed.ok()) return freed.status();
    if (*freed > 0) {
      MutexLock lock(state_mu_);
      stats_.bytes_truncated += *freed;
    }
  }

  Hook(index, CheckpointPhase::kAfterTruncate);

  {
    MutexLock lock(state_mu_);
    stats_.pages_flushed += flushed;
    stats_.pages_skipped_busy += busy;
    stats_.last_end_lsn = *end_lsn;
    stats_.last_redo_lsn = redo_lsn;
  }
  return Status::OK();
}

CheckpointerStats Checkpointer::stats() const {
  MutexLock lock(state_mu_);
  return stats_;
}

}  // namespace tendax

#include "db/query.h"

#include <optional>

namespace tendax {

namespace {

/// Strict-weak ordering across comparable Value alternatives; returns
/// nullopt when the operands are not comparable (mixed types or NULL).
std::optional<int> CompareValues(const Value& lhs, const Value& rhs) {
  if (ValueIsNull(lhs) || ValueIsNull(rhs)) return std::nullopt;
  if (lhs.index() != rhs.index()) {
    // Allow uint64/int64/double cross-comparison via double widening.
    auto as_double = [](const Value& v) -> std::optional<double> {
      if (const auto* u = std::get_if<uint64_t>(&v)) {
        return static_cast<double>(*u);
      }
      if (const auto* i = std::get_if<int64_t>(&v)) {
        return static_cast<double>(*i);
      }
      if (const auto* d = std::get_if<double>(&v)) return *d;
      return std::nullopt;
    };
    auto l = as_double(lhs), r = as_double(rhs);
    if (!l || !r) return std::nullopt;
    return *l < *r ? -1 : (*l > *r ? 1 : 0);
  }
  if (lhs < rhs) return -1;
  if (rhs < lhs) return 1;
  return 0;
}

}  // namespace

bool EvaluateCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (op == CompareOp::kContains) {
    const auto* hay = std::get_if<std::string>(&lhs);
    const auto* needle = std::get_if<std::string>(&rhs);
    return hay != nullptr && needle != nullptr &&
           hay->find(*needle) != std::string::npos;
  }
  auto cmp = CompareValues(lhs, rhs);
  if (!cmp.has_value()) return false;
  switch (op) {
    case CompareOp::kEq:
      return *cmp == 0;
    case CompareOp::kNe:
      return *cmp != 0;
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kGt:
      return *cmp > 0;
    case CompareOp::kGe:
      return *cmp >= 0;
    case CompareOp::kContains:
      break;
  }
  return false;
}

TableQuery& TableQuery::Where(const std::string& column, CompareOp op,
                              Value value) {
  predicates_.push_back(Pred{column, op, std::move(value)});
  return *this;
}

TableQuery& TableQuery::Select(std::vector<std::string> columns) {
  projection_ = std::move(columns);
  return *this;
}

TableQuery& TableQuery::Limit(size_t n) {
  limit_ = n;
  return *this;
}

Status TableQuery::Resolve(std::vector<size_t>* pred_cols,
                           std::vector<size_t>* out_cols) const {
  const Schema& schema = table_->schema();
  for (const Pred& pred : predicates_) {
    auto idx = schema.ColumnIndex(pred.column);
    if (!idx.ok()) return idx.status();
    pred_cols->push_back(*idx);
  }
  for (const std::string& column : projection_) {
    auto idx = schema.ColumnIndex(column);
    if (!idx.ok()) return idx.status();
    out_cols->push_back(*idx);
  }
  return Status::OK();
}

bool TableQuery::Matches(const Record& record,
                         const std::vector<size_t>& pred_cols) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (pred_cols[i] >= record.size()) return false;
    if (!EvaluateCompare(record.value(pred_cols[i]), predicates_[i].op,
                         predicates_[i].value)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Record>> TableQuery::Run() {
  std::vector<size_t> pred_cols, out_cols;
  TENDAX_RETURN_IF_ERROR(Resolve(&pred_cols, &out_cols));
  std::vector<Record> rows;
  TENDAX_RETURN_IF_ERROR(table_->Scan([&](RecordId, const Record& record) {
    if (!Matches(record, pred_cols)) return true;
    if (projection_.empty()) {
      rows.push_back(record);
    } else {
      std::vector<Value> values;
      values.reserve(out_cols.size());
      for (size_t col : out_cols) values.push_back(record.value(col));
      rows.emplace_back(std::move(values));
    }
    return rows.size() < limit_;
  }));
  return rows;
}

Result<uint64_t> TableQuery::Count() {
  std::vector<size_t> pred_cols, out_cols;
  TENDAX_RETURN_IF_ERROR(Resolve(&pred_cols, &out_cols));
  uint64_t n = 0;
  TENDAX_RETURN_IF_ERROR(table_->Scan([&](RecordId, const Record& record) {
    if (Matches(record, pred_cols)) ++n;
    return true;
  }));
  return n;
}

Result<uint64_t> TableQuery::Delete(Transaction* txn) {
  std::vector<size_t> pred_cols, out_cols;
  TENDAX_RETURN_IF_ERROR(Resolve(&pred_cols, &out_cols));
  std::vector<RecordId> victims;
  TENDAX_RETURN_IF_ERROR(table_->Scan([&](RecordId rid, const Record& record) {
    if (Matches(record, pred_cols)) victims.push_back(rid);
    return victims.size() < limit_;
  }));
  for (RecordId rid : victims) {
    TENDAX_RETURN_IF_ERROR(table_->Delete(txn, rid));
  }
  return static_cast<uint64_t>(victims.size());
}

}  // namespace tendax

#include "db/record.h"

#include <cstring>

#include "util/coding.h"

namespace tendax {

namespace {

// Type tags in the wire format.
enum : uint8_t {
  kTagNull = 0,
  kTagUint64 = 1,
  kTagInt64 = 2,
  kTagBool = 3,
  kTagDouble = 4,
  kTagString = 5,
};

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

bool ValueIsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

std::string ValueToString(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "NULL"; }
    std::string operator()(uint64_t x) const { return std::to_string(x); }
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(bool x) const { return x ? "true" : "false"; }
    std::string operator()(double x) const { return std::to_string(x); }
    std::string operator()(const std::string& x) const { return "'" + x + "'"; }
  };
  return std::visit(Visitor{}, v);
}

void Record::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    if (std::holds_alternative<std::monostate>(v)) {
      dst->push_back(static_cast<char>(kTagNull));
    } else if (const auto* u = std::get_if<uint64_t>(&v)) {
      dst->push_back(static_cast<char>(kTagUint64));
      PutVarint64(dst, *u);
    } else if (const auto* i = std::get_if<int64_t>(&v)) {
      dst->push_back(static_cast<char>(kTagInt64));
      PutVarint64(dst, ZigZagEncode(*i));
    } else if (const auto* b = std::get_if<bool>(&v)) {
      dst->push_back(static_cast<char>(kTagBool));
      dst->push_back(*b ? 1 : 0);
    } else if (const auto* d = std::get_if<double>(&v)) {
      dst->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      memcpy(&bits, d, sizeof(bits));
      PutFixed64(dst, bits);
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      dst->push_back(static_cast<char>(kTagString));
      PutLengthPrefixed(dst, *s);
    }
  }
}

std::string Record::Encode() const {
  std::string out;
  EncodeTo(&out);
  return out;
}

Result<Record> Record::Decode(Slice input) {
  uint32_t n;
  if (!GetVarint32(&input, &n)) {
    return Status::Corruption("record: bad arity");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (input.empty()) return Status::Corruption("record: truncated");
    uint8_t tag = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    switch (tag) {
      case kTagNull:
        values.emplace_back(std::monostate{});
        break;
      case kTagUint64: {
        uint64_t u;
        if (!GetVarint64(&input, &u))
          return Status::Corruption("record: bad uint64");
        values.emplace_back(u);
        break;
      }
      case kTagInt64: {
        uint64_t u;
        if (!GetVarint64(&input, &u))
          return Status::Corruption("record: bad int64");
        values.emplace_back(ZigZagDecode(u));
        break;
      }
      case kTagBool: {
        if (input.empty()) return Status::Corruption("record: bad bool");
        values.emplace_back(input[0] != 0);
        input.remove_prefix(1);
        break;
      }
      case kTagDouble: {
        uint64_t bits;
        if (!GetFixed64(&input, &bits))
          return Status::Corruption("record: bad double");
        double d;
        memcpy(&d, &bits, sizeof(d));
        values.emplace_back(d);
        break;
      }
      case kTagString: {
        Slice s;
        if (!GetLengthPrefixed(&input, &s))
          return Status::Corruption("record: bad string");
        values.emplace_back(s.ToString());
        break;
      }
      default:
        return Status::Corruption("record: unknown value tag " +
                                  std::to_string(tag));
    }
  }
  return Record(std::move(values));
}

Status Record::ConformsTo(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(values_.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (ValueIsNull(values_[i])) continue;
    bool ok = false;
    switch (schema.column(i).type) {
      case ColumnType::kUint64:
        ok = std::holds_alternative<uint64_t>(values_[i]);
        break;
      case ColumnType::kInt64:
        ok = std::holds_alternative<int64_t>(values_[i]);
        break;
      case ColumnType::kBool:
        ok = std::holds_alternative<bool>(values_[i]);
        break;
      case ColumnType::kDouble:
        ok = std::holds_alternative<double>(values_[i]);
        break;
      case ColumnType::kString:
        ok = std::holds_alternative<std::string>(values_[i]);
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("column '" + schema.column(i).name +
                                     "' type mismatch");
    }
  }
  return Status::OK();
}

std::string Record::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ValueToString(values_[i]);
  }
  out += "]";
  return out;
}

}  // namespace tendax

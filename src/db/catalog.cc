#include "db/catalog.h"

#include <algorithm>

namespace tendax {

namespace {

Schema CatalogSchema() {
  return Schema({{"table_id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"schema", ColumnType::kString}});
}

Result<ColumnType> ParseColumnType(const std::string& s) {
  if (s == "UINT64") return ColumnType::kUint64;
  if (s == "INT64") return ColumnType::kInt64;
  if (s == "BOOL") return ColumnType::kBool;
  if (s == "DOUBLE") return ColumnType::kDouble;
  if (s == "STRING") return ColumnType::kString;
  return Status::Corruption("unknown column type '" + s + "'");
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ",";
    out += schema.column(i).name;
    out += ":";
    out += ColumnTypeName(schema.column(i).type);
  }
  return out;
}

Result<Schema> ParseSchema(const std::string& text) {
  std::vector<Column> columns;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string part = text.substr(pos, comma - pos);
    size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad schema fragment '" + part + "'");
    }
    auto type = ParseColumnType(part.substr(colon + 1));
    if (!type.ok()) return type.status();
    columns.push_back(Column{part.substr(0, colon), *type});
    pos = comma + 1;
  }
  return Schema(std::move(columns));
}

Catalog::Catalog(BufferPool* pool, TxnManager* txns)
    : pool_(pool), txns_(txns) {
  catalog_table_ = std::make_unique<HeapTable>(
      kCatalogTableId, "__catalog", CatalogSchema(), pool_, txns_);
}

Result<HeapTable*> Catalog::CreateTable(Transaction* txn,
                                        const std::string& name,
                                        const Schema& schema) {
  uint32_t id;
  {
    MutexLock lock(mu_);
    if (by_name_.count(name)) {
      return Status::AlreadyExists("table '" + name + "' exists");
    }
    id = next_table_id_++;
  }
  Record entry({uint64_t{id}, name, SerializeSchema(schema)});
  auto rid = catalog_table_->Insert(txn, entry);
  if (!rid.ok()) return rid.status();
  return RegisterTable(id, name, schema);
}

Result<HeapTable*> Catalog::RegisterTable(uint32_t id, const std::string& name,
                                          Schema schema) {
  MutexLock lock(mu_);
  auto table = std::make_unique<HeapTable>(id, name, std::move(schema), pool_,
                                           txns_);
  HeapTable* raw = table.get();
  by_id_[id] = std::move(table);
  by_name_[name] = raw;
  next_table_id_ = std::max(next_table_id_, id + 1);
  return raw;
}

Result<HeapTable*> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

Result<HeapTable*> Catalog::GetTableById(uint64_t table_id) const {
  if (table_id == kCatalogTableId) return catalog_table_.get();
  MutexLock lock(mu_);
  auto it = by_id_.find(table_id);
  if (it == by_id_.end()) {
    return Status::NotFound("no table with id " + std::to_string(table_id));
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, table] : by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status Catalog::LoadFromStorage(
    const std::unordered_map<uint32_t, std::vector<PageId>>& pages_by_table) {
  auto cat_pages = pages_by_table.find(kCatalogTableId);
  if (cat_pages != pages_by_table.end()) {
    for (PageId p : cat_pages->second) catalog_table_->AdoptPage(p);
  }
  Status scan_status = Status::OK();
  TENDAX_RETURN_IF_ERROR(
      catalog_table_->Scan([&](RecordId, const Record& rec) {
        auto schema = ParseSchema(rec.GetString(2));
        if (!schema.ok()) {
          scan_status = schema.status();
          return false;
        }
        auto table = RegisterTable(static_cast<uint32_t>(rec.GetUint(0)),
                                   rec.GetString(1), std::move(*schema));
        if (!table.ok()) {
          scan_status = table.status();
          return false;
        }
        auto pages = pages_by_table.find(static_cast<uint32_t>(rec.GetUint(0)));
        if (pages != pages_by_table.end()) {
          for (PageId p : pages->second) (*table)->AdoptPage(p);
        }
        return true;
      }));
  return scan_status;
}

}  // namespace tendax

#include "db/heap_table.h"

#include <algorithm>

#include "util/logging.h"

namespace tendax {

HeapTable::HeapTable(uint32_t table_id, std::string name, Schema schema,
                     BufferPool* pool, TxnManager* txns)
    : table_id_(table_id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool),
      txns_(txns) {}

Result<RecordId> HeapTable::Insert(Transaction* txn, const Record& record) {
  TENDAX_RETURN_IF_ERROR(record.ConformsTo(schema_));
  return InsertBytes(txn, record.Encode());
}

Result<RecordId> HeapTable::InsertBytes(Transaction* txn,
                                        const std::string& bytes) {
  if (bytes.size() > SlottedPage::kMaxRecordSize) {
    return Status::InvalidArgument("record too large (" +
                                   std::to_string(bytes.size()) + " bytes)");
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto page_id = FindPageWithSpace(bytes.size() + 8);
    if (!page_id.ok()) return page_id.status();
    auto page = pool_->FetchPage(*page_id);
    if (!page.ok()) return page.status();
    bool lost_race = false;
    {
      PageGuard guard(pool_, *page);
      MutexLock latch(guard->latch());
      SlottedPage sp(guard.get());
      auto slot = sp.Insert(bytes);
      if (slot.status().IsOutOfRange()) {
        lost_race = true;  // page filled concurrently; look elsewhere
      } else {
        if (!slot.ok()) return slot.status();
        RecordId rid{*page_id, *slot};
        auto lsn = txns_->LogUpdate(txn, UpdateOp::kInsert, table_id_,
                                    rid.Pack(), "", bytes);
        if (!lsn.ok()) return lsn.status();
        if (*lsn != kInvalidLsn) guard->set_lsn(*lsn);
        guard.MarkDirty();
        return rid;
      }
    }
    if (lost_race) {
      // Latch released above: safe to take the table mutex (the opposite
      // order — table mutex then latch — is used by FindPageWithSpace).
      MutexLock lock(mu_);
      if (last_insert_page_ == *page_id) last_insert_page_ = kInvalidPageId;
    }
  }
  return Status::Internal("could not place record after repeated attempts");
}

Result<Record> HeapTable::Get(RecordId rid) const {
  auto bytes = GetBytes(rid);
  if (!bytes.ok()) return bytes.status();
  return Record::Decode(*bytes);
}

Result<std::string> HeapTable::GetBytes(RecordId rid) const {
  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  MutexLock latch(guard->latch());
  SlottedPage sp(guard.get());
  if (sp.table_id() != table_id_) {
    return Status::NotFound("rid " + rid.ToString() +
                            " does not belong to table " + name_);
  }
  auto data = sp.Get(rid.slot);
  if (!data.ok()) return data.status();
  return data->ToString();
}

Result<RecordId> HeapTable::Update(Transaction* txn, RecordId rid,
                                   const Record& record) {
  TENDAX_RETURN_IF_ERROR(record.ConformsTo(schema_));
  std::string after = record.Encode();
  auto before = GetBytes(rid);
  if (!before.ok()) return before.status();

  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  {
    MutexLock latch(guard->latch());
    SlottedPage sp(guard.get());
    Status st = sp.Update(rid.slot, after);
    if (st.ok()) {
      auto lsn = txns_->LogUpdate(txn, UpdateOp::kUpdate, table_id_,
                                  rid.Pack(), *before, after);
      if (!lsn.ok()) return lsn.status();
      if (*lsn != kInvalidLsn) guard->set_lsn(*lsn);
      guard.MarkDirty();
      return rid;
    }
    if (!st.IsOutOfRange()) return st;

    // Record no longer fits in its page: SlottedPage::Update already freed
    // the slot, so log the move as delete + insert elsewhere.
    auto del_lsn = txns_->LogUpdate(txn, UpdateOp::kDelete, table_id_,
                                    rid.Pack(), *before, "");
    if (!del_lsn.ok()) return del_lsn.status();
    if (*del_lsn != kInvalidLsn) guard->set_lsn(*del_lsn);
    guard.MarkDirty();
  }
  guard.Release();
  return InsertBytes(txn, after);
}

Status HeapTable::Delete(Transaction* txn, RecordId rid) {
  auto before = GetBytes(rid);
  if (!before.ok()) return before.status();
  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  MutexLock latch(guard->latch());
  SlottedPage sp(guard.get());
  TENDAX_RETURN_IF_ERROR(sp.Delete(rid.slot));
  auto lsn = txns_->LogUpdate(txn, UpdateOp::kDelete, table_id_, rid.Pack(),
                              *before, "");
  if (!lsn.ok()) return lsn.status();
  if (*lsn != kInvalidLsn) guard->set_lsn(*lsn);
  guard.MarkDirty();
  return Status::OK();
}

Status HeapTable::Scan(
    const std::function<bool(RecordId, const Record&)>& fn) const {
  std::vector<PageId> pages;
  {
    MutexLock lock(mu_);
    pages = pages_;
  }
  for (PageId pid : pages) {
    auto page = pool_->FetchPage(pid);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    // Decode under the latch, but run the callback outside it so callbacks
    // may touch other pages of this table.
    std::vector<std::pair<RecordId, Record>> rows;
    {
      MutexLock latch(guard->latch());
      SlottedPage sp(guard.get());
      if (!sp.IsInitialized()) continue;
      for (SlotId s = 0; s < sp.num_slots(); ++s) {
        if (!sp.IsLive(s)) continue;
        auto data = sp.Get(s);
        if (!data.ok()) return data.status();
        auto record = Record::Decode(*data);
        if (!record.ok()) return record.status();
        rows.emplace_back(RecordId{pid, s}, std::move(*record));
      }
    }
    for (auto& [rid, record] : rows) {
      if (!fn(rid, record)) return Status::OK();
    }
  }
  return Status::OK();
}

Result<uint64_t> HeapTable::Count() const {
  uint64_t n = 0;
  TENDAX_RETURN_IF_ERROR(Scan([&](RecordId, const Record&) {
    ++n;
    return true;
  }));
  return n;
}

Status HeapTable::ApplyChange(UpdateOp op, RecordId rid,
                              const std::string& image, Lsn lsn) {
  TENDAX_RETURN_IF_ERROR(EnsurePage(rid.page));
  auto page = pool_->FetchPage(rid.page);
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  MutexLock latch(guard->latch());
  SlottedPage sp(guard.get());
  if (!sp.IsInitialized()) sp.Init(table_id_);
  if (lsn != kInvalidLsn && guard->lsn() >= lsn) {
    return Status::OK();  // already reflected on this page
  }
  switch (op) {
    case UpdateOp::kInsert:
      TENDAX_RETURN_IF_ERROR(sp.InsertAt(rid.slot, image));
      break;
    case UpdateOp::kUpdate: {
      Status st = sp.Update(rid.slot, image);
      if (st.IsOutOfRange()) {
        // The original execution kept the record in place (it logged an
        // in-place update), so after compaction it must fit; failure here
        // means corruption.
        return Status::Corruption("replayed update does not fit");
      }
      TENDAX_RETURN_IF_ERROR(st);
      break;
    }
    case UpdateOp::kDelete:
      TENDAX_RETURN_IF_ERROR(sp.Delete(rid.slot));
      break;
  }
  if (lsn != kInvalidLsn) guard->set_lsn(lsn);
  guard.MarkDirty();
  return Status::OK();
}

void HeapTable::AdoptPage(PageId page) {
  MutexLock lock(mu_);
  auto it = std::lower_bound(pages_.begin(), pages_.end(), page);
  if (it == pages_.end() || *it != page) pages_.insert(it, page);
}

std::vector<PageId> HeapTable::pages() const {
  MutexLock lock(mu_);
  return pages_;
}

Result<PageId> HeapTable::FindPageWithSpace(size_t need) {
  MutexLock lock(mu_);
  if (last_insert_page_ != kInvalidPageId) {
    auto page = pool_->FetchPage(last_insert_page_);
    if (page.ok()) {
      PageGuard guard(pool_, *page);
      MutexLock latch(guard->latch());
      SlottedPage sp(guard.get());
      if (sp.IsInitialized() && sp.FreeSpace() >= need) {
        return last_insert_page_;
      }
    }
  }
  // Check a bounded number of recent pages (older pages are likelier full);
  // an unbounded scan would make a long sequence of inserts quadratic.
  int checked = 0;
  for (auto it = pages_.rbegin(); it != pages_.rend() && checked < 8;
       ++it, ++checked) {
    auto page = pool_->FetchPage(*it);
    if (!page.ok()) return page.status();
    PageGuard guard(pool_, *page);
    MutexLock latch(guard->latch());
    SlottedPage sp(guard.get());
    if (sp.IsInitialized() && sp.FreeSpace() >= need) {
      last_insert_page_ = *it;
      return *it;
    }
  }
  auto page = pool_->NewPage();
  if (!page.ok()) return page.status();
  PageGuard guard(pool_, *page);
  MutexLock latch(guard->latch());
  SlottedPage sp(guard.get());
  sp.Init(table_id_);
  guard.MarkDirty();
  PageId pid = guard->id();
  auto pos = std::lower_bound(pages_.begin(), pages_.end(), pid);
  pages_.insert(pos, pid);
  last_insert_page_ = pid;
  return pid;
}

Status HeapTable::EnsurePage(PageId page) {
  {
    MutexLock lock(mu_);
    if (std::binary_search(pages_.begin(), pages_.end(), page)) {
      return Status::OK();
    }
  }
  // Replay may reference a page that is not yet adopted, or whose
  // allocation (file growth) was lost in the crash — re-extend the file.
  TENDAX_RETURN_IF_ERROR(pool_->EnsureAllocatedUpTo(page));
  AdoptPage(page);
  return Status::OK();
}

}  // namespace tendax

#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "util/coding.h"

namespace tendax {

namespace {

/// FNV-1a over `data`; matches the page-checksum recipe used elsewhere in
/// the tree but kept local so obs/ depends only on util/.
uint32_t MetricsChecksum(const Slice& data) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

int MetricStripeForThisThread() {
  static std::atomic<uint32_t> next_stripe{0};
  thread_local int stripe =
      static_cast<int>(next_stripe.fetch_add(1, std::memory_order_relaxed) %
                       kMetricStripes);
  return stripe;
}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  int width = std::bit_width(value);
  return width < kHistogramBuckets - 1 ? width : kHistogramBuckets - 1;
}

uint64_t HistogramSnapshot::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket == 1) return 1;
  return uint64_t{1} << (bucket - 1);
}

uint64_t HistogramSnapshot::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile, 1-based: the smallest rank r such
  // that r/count >= p/100.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * count + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // The overflow bucket has no finite upper bound; the observed max is
      // the tightest statement we can make. Also never report above max.
      uint64_t upper = BucketUpperBound(b);
      return upper < max ? upper : max;
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const auto& s : stripes_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > snap.max) snap.max = m;
  }
  for (int b = 0; b < kHistogramBuckets; ++b) snap.count += snap.buckets[b];
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  PutVarint32(&out, snapshot.version);
  PutVarint32(&out, static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    PutLengthPrefixed(&out, Slice(name));
    PutVarint64(&out, value);
  }
  PutVarint32(&out, static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    PutLengthPrefixed(&out, Slice(name));
    PutVarint64(&out, ZigZagEncode(value));
  }
  PutVarint32(&out, static_cast<uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, h] : snapshot.histograms) {
    PutLengthPrefixed(&out, Slice(name));
    PutVarint64(&out, h.count);
    PutVarint64(&out, h.sum);
    PutVarint64(&out, h.max);
    PutVarint32(&out, kHistogramBuckets);
    for (int b = 0; b < kHistogramBuckets; ++b) PutVarint64(&out, h.buckets[b]);
  }
  PutFixed32(&out, MetricsChecksum(Slice(out)));
  return out;
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(const Slice& encoded) {
  if (encoded.size() < 4) {
    return Status::Corruption("metrics snapshot shorter than its checksum");
  }
  Slice payload(encoded.data(), encoded.size() - 4);
  uint32_t expected = DecodeFixed32(encoded.data() + payload.size());
  if (MetricsChecksum(payload) != expected) {
    return Status::Corruption("metrics snapshot checksum mismatch");
  }

  MetricsSnapshot snap;
  Slice in = payload;
  if (!GetVarint32(&in, &snap.version)) {
    return Status::Corruption("metrics snapshot truncated at version");
  }
  if (snap.version != MetricsSnapshot::kVersion) {
    return Status::InvalidArgument("unsupported metrics snapshot version " +
                                   std::to_string(snap.version));
  }

  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("metrics snapshot truncated at counter count");
  }
  snap.counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    uint64_t value = 0;
    if (!GetLengthPrefixed(&in, &name) || !GetVarint64(&in, &value)) {
      return Status::Corruption("metrics snapshot truncated in counters");
    }
    snap.counters.emplace_back(name.ToString(), value);
  }

  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("metrics snapshot truncated at gauge count");
  }
  snap.gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    uint64_t value = 0;
    if (!GetLengthPrefixed(&in, &name) || !GetVarint64(&in, &value)) {
      return Status::Corruption("metrics snapshot truncated in gauges");
    }
    snap.gauges.emplace_back(name.ToString(), ZigZagDecode(value));
  }

  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("metrics snapshot truncated at histogram count");
  }
  snap.histograms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    HistogramSnapshot h;
    uint32_t nbuckets = 0;
    if (!GetLengthPrefixed(&in, &name) || !GetVarint64(&in, &h.count) ||
        !GetVarint64(&in, &h.sum) || !GetVarint64(&in, &h.max) ||
        !GetVarint32(&in, &nbuckets)) {
      return Status::Corruption("metrics snapshot truncated in histograms");
    }
    if (nbuckets > kHistogramBuckets) {
      return Status::InvalidArgument("metrics snapshot histogram has " +
                                     std::to_string(nbuckets) +
                                     " buckets; limit is " +
                                     std::to_string(kHistogramBuckets));
    }
    for (uint32_t b = 0; b < nbuckets; ++b) {
      if (!GetVarint64(&in, &h.buckets[b])) {
        return Status::Corruption("metrics snapshot truncated in buckets");
      }
    }
    snap.histograms.emplace_back(name.ToString(), h);
  }

  if (!in.empty()) {
    return Status::InvalidArgument("metrics snapshot has trailing bytes");
  }
  return snap;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  if (!enabled_) return nullptr;
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "tendax_";
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void AppendQuantileLine(std::string* out, const std::string& family,
                        const char* quantile, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{quantile=\"%s\"} %" PRIu64 "\n", quantile,
                value);
  out->append(family);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::TextExposition() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  char buf[64];
  for (const auto& [name, value] : snap.counters) {
    std::string family = PrometheusName(name);
    out += "# TYPE " + family + " counter\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += family + buf;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string family = PrometheusName(name);
    out += "# TYPE " + family + " gauge\n";
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
    out += family + buf;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string family = PrometheusName(name);
    out += "# TYPE " + family + " summary\n";
    AppendQuantileLine(&out, family, "0.5", h.P50());
    AppendQuantileLine(&out, family, "0.95", h.P95());
    AppendQuantileLine(&out, family, "0.99", h.P99());
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", h.sum);
    out += family + buf;
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h.count);
    out += family + buf;
  }
  return out;
}

}  // namespace tendax

#ifndef TENDAX_OBS_METRICS_H_
#define TENDAX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace tendax {

// Lock-cheap observability primitives. Hot-path cost is a single relaxed
// atomic add on a thread-striped cache line; aggregation (snapshots,
// percentiles, text exposition) pays the cost instead. Metric objects are
// owned by a MetricsRegistry and live as long as the registry, so subsystems
// cache raw pointers at construction time and never look names up again.

/// Number of independently padded counter stripes. Threads are assigned a
/// stripe round-robin at first use, so concurrent writers usually touch
/// different cache lines.
inline constexpr int kMetricStripes = 8;

/// Histogram bucket count: bucket 0 holds the value 0, buckets 1..46 hold
/// values whose bit width is the bucket index (i.e. [2^(b-1), 2^b - 1]), and
/// bucket 47 is the overflow bucket for values >= 2^46.
inline constexpr int kHistogramBuckets = 48;

/// Index of the stripe the calling thread writes to.
int MetricStripeForThisThread();

/// Monotonic counter. Add() is a relaxed fetch_add on a per-thread stripe;
/// Value() sums the stripes (each stripe is individually monotone, so a
/// later Value() is always >= an earlier one even while writers race).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    stripes_[MetricStripeForThisThread()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Last-value (or high-watermark) gauge. Unlike Counter it is not striped:
/// gauges are written on cold paths (batch sizes, queue depths).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is larger than the current reading.
  void SetMax(int64_t value) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (value > cur &&
           !v_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time aggregation of a Histogram. Percentiles are estimated as
/// the upper bound of the bucket containing the requested rank, except the
/// overflow bucket which reports the observed maximum.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Smallest value that lands in `bucket`.
  static uint64_t BucketLowerBound(int bucket);
  /// Largest value that lands in `bucket` (== observed max is reported for
  /// the overflow bucket by Percentile()).
  static uint64_t BucketUpperBound(int bucket);

  /// `p` in [0, 100]. Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;
  uint64_t P50() const { return Percentile(50.0); }
  uint64_t P95() const { return Percentile(95.0); }
  uint64_t P99() const { return Percentile(99.0); }
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log2-bucketed histogram of non-negative values (latencies in
/// microseconds, batch sizes). Record() is two relaxed adds plus a CAS-free
/// max update on the calling thread's stripe.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index for `value` (see kHistogramBuckets for the layout).
  static int BucketFor(uint64_t value);

  void Record(uint64_t value) {
    Stripe& s = stripes_[MetricStripeForThisThread()];
    s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (value > cur && !s.max.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Merges all stripes into one snapshot. Torn-free per stripe counter and
  /// monotone in `count` across successive calls.
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Serializable point-in-time view of a whole registry. Names are sorted so
/// two snapshots of the same registry encode comparably.
struct MetricsSnapshot {
  /// Wire format version written by EncodeMetricsSnapshot.
  static constexpr uint32_t kVersion = 1;

  uint32_t version = kVersion;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of counter `name`, or 0 if absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Value of gauge `name`, or 0 if absent.
  int64_t GaugeValue(const std::string& name) const;
  /// Histogram `name`, or nullptr if absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Encodes `snapshot` with a trailing fixed32 FNV-1a checksum over the
/// payload so a remote reader can detect torn or corrupted transfers.
std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);

/// Strict inverse of EncodeMetricsSnapshot: checksum mismatch or truncation
/// -> kCorruption, unknown version or trailing bytes -> kInvalidArgument.
Result<MetricsSnapshot> DecodeMetricsSnapshot(const Slice& encoded);

/// Named metric registry. Lookup allocates-on-miss under a mutex and is
/// meant for construction time only; returned pointers stay valid for the
/// registry's lifetime. When constructed disabled, counters and gauges still
/// function (their cost is negligible and existing accessors are backed by
/// them) but histogram() returns nullptr so timed paths skip clock reads.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Never returns nullptr; same name -> same object.
  Counter* counter(const std::string& name);
  /// Never returns nullptr; same name -> same object.
  Gauge* gauge(const std::string& name);
  /// Returns nullptr when the registry is disabled.
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Prometheus-style exposition ('.' in metric names becomes '_', every
  /// family is prefixed "tendax_"; histograms render as summaries with
  /// quantile lines plus _sum/_count).
  std::string TextExposition() const;

 private:
  const bool enabled_;
  // Registration/snapshot lock only — metric updates go through the objects'
  // atomics. counter()/histogram() are called from subsystem constructors
  // and Snapshot from the stats path, never with other locks held that rank
  // above it, hence leaf rank.
  mutable Mutex mu_{"metrics.mu", lockorder::kRankLeaf};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TENDAX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TENDAX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TENDAX_GUARDED_BY(mu_);
};

// Null-safe helpers: every instrumented subsystem accepts a nullable
// MetricsRegistry* and caches nullable metric pointers, so standalone unit
// constructions pay nothing.
inline void MetricAdd(Counter* c, uint64_t delta = 1) {
  if (c != nullptr) c->Add(delta);
}
inline void MetricRecord(Histogram* h, uint64_t value) {
  if (h != nullptr) h->Record(value);
}
inline void MetricSet(Gauge* g, int64_t value) {
  if (g != nullptr) g->Set(value);
}
inline void MetricMax(Gauge* g, int64_t value) {
  if (g != nullptr) g->SetMax(value);
}

/// RAII latency span. Records elapsed wall-clock microseconds into the
/// target histogram when destroyed, so early returns and error paths are
/// covered by construction order alone. A null histogram arms nothing (and
/// skips the clock read entirely).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (h_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    h_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }

  /// Retargets the recording without restarting the clock — used when the
  /// final destination is only known mid-span (e.g. per-command dispatch
  /// latency, where the command kind appears after decode). A timer armed
  /// with nullptr stays disarmed: there is no start time to preserve.
  void Redirect(Histogram* h) {
    if (h_ != nullptr) h_ = h;
  }

  /// Drops the span without recording.
  void Cancel() { h_ = nullptr; }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace tendax

#endif  // TENDAX_OBS_METRICS_H_

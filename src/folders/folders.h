#ifndef TENDAX_FOLDERS_FOLDERS_H_
#define TENDAX_FOLDERS_FOLDERS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "db/database.h"
#include "meta/meta_store.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Predicate over a document's metadata — the definition language of
/// dynamic folders. Combine with And/Or/Not; evaluate against the current
/// metadata state. "Within" durations are relative to evaluation time, so
/// folder contents are fluent ("documents I read within the last week").
class FolderQuery {
 public:
  virtual ~FolderQuery() = default;
  virtual bool Matches(DocumentId doc, const MetaStore& meta,
                       TextStore& text, Timestamp now) const = 0;
  virtual std::string Describe() const = 0;

  // --- factory helpers ---
  static std::unique_ptr<FolderQuery> ReadBy(UserId user, Timestamp within);
  static std::unique_ptr<FolderQuery> EditedBy(UserId user, Timestamp within);
  static std::unique_ptr<FolderQuery> CreatedBy(UserId user);
  static std::unique_ptr<FolderQuery> StateIs(std::string state);
  static std::unique_ptr<FolderQuery> NameContains(std::string needle);
  static std::unique_ptr<FolderQuery> SizeAtLeast(uint64_t chars);
  static std::unique_ptr<FolderQuery> SizeAtMost(uint64_t chars);
  static std::unique_ptr<FolderQuery> PropertyIs(std::string key,
                                                 std::string value);
  static std::unique_ptr<FolderQuery> And(
      std::vector<std::unique_ptr<FolderQuery>> parts);
  static std::unique_ptr<FolderQuery> Or(
      std::vector<std::unique_ptr<FolderQuery>> parts);
  static std::unique_ptr<FolderQuery> Not(std::unique_ptr<FolderQuery> part);
};

/// A classic hierarchical folder.
struct StaticFolderInfo {
  FolderId id;
  FolderId parent;
  std::string name;
};

struct FolderManagerStats {
  uint64_t incremental_refreshes = 0;
  uint64_t full_refreshes = 0;
  uint64_t membership_changes = 0;
};

/// Static folders (persisted hierarchy + placements) and dynamic folders:
/// virtual folders whose membership is a metadata predicate, maintained
/// *incrementally* — an audit event re-evaluates only the touched document,
/// so folder contents change "within seconds" of the underlying activity
/// (paper Sec. 3 bullet 3) without rescanning the corpus.
class FolderManager {
 public:
  FolderManager(Database* db, TextStore* text, MetaStore* meta);

  Status Init();

  // --- static folders ---
  Result<FolderId> CreateFolder(UserId user, FolderId parent,
                                const std::string& name);
  Status PlaceDocument(UserId user, FolderId folder, DocumentId doc);
  Status RemoveDocument(UserId user, FolderId folder, DocumentId doc);
  Result<std::vector<DocumentId>> FolderContents(FolderId folder) const;
  std::vector<StaticFolderInfo> Folders() const;
  /// Static folders containing `doc` (document-level metadata).
  std::vector<FolderId> PlacementsOf(DocumentId doc) const;

  // --- dynamic folders ---
  /// Registers a dynamic folder; membership is evaluated immediately over
  /// all known documents and then maintained incrementally.
  Result<FolderId> CreateDynamicFolder(const std::string& name,
                                       std::unique_ptr<FolderQuery> query);
  Result<std::set<DocumentId>> DynamicContents(FolderId folder) const;
  /// Re-evaluates one dynamic folder over every document (the ablation
  /// baseline for the incremental path).
  Status FullRefresh(FolderId folder);
  /// Re-evaluates all dynamic folders for one document (incremental path;
  /// also invoked automatically on audit events).
  void RefreshDocument(DocumentId doc);

  FolderManagerStats stats() const;

 private:
  struct DynamicFolder {
    FolderId id;
    std::string name;
    std::unique_ptr<FolderQuery> query;
    std::set<DocumentId> members;
  };

  Database* const db_;
  TextStore* const text_;
  MetaStore* const meta_;

  HeapTable* folders_table_ = nullptr;
  HeapTable* placements_table_ = nullptr;

  // Guards the folder caches; released before any db_/text_/meta_ call.
  mutable Mutex mu_{"folders.mu", lockorder::kRankDocument};
  std::map<uint64_t, StaticFolderInfo> static_folders_
      TENDAX_GUARDED_BY(mu_);
  std::map<std::pair<uint64_t, uint64_t>, RecordId> placements_
      TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, DynamicFolder> dynamic_folders_ TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_folder_id_{1};
  FolderManagerStats stats_ TENDAX_GUARDED_BY(mu_);
};

}  // namespace tendax

#endif  // TENDAX_FOLDERS_FOLDERS_H_

#include "folders/folders.h"

#include <algorithm>

namespace tendax {

namespace {

Schema FoldersSchema() {
  return Schema({{"folder_id", ColumnType::kUint64},
                 {"parent", ColumnType::kUint64},
                 {"name", ColumnType::kString}});
}

Schema PlacementsSchema() {
  return Schema({{"folder_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64}});
}

class ReadByQuery : public FolderQuery {
 public:
  ReadByQuery(UserId user, Timestamp within) : user_(user), within_(within) {}
  bool Matches(DocumentId doc, const MetaStore& meta, TextStore&,
               Timestamp now) const override {
    auto m = meta.Meta(doc);
    auto it = m.by_user.find(user_);
    if (it == m.by_user.end() || it->second.last_read == 0) return false;
    return within_ == 0 || it->second.last_read + within_ >= now;
  }
  std::string Describe() const override {
    return "read-by(" + user_.ToString() + ")";
  }

 private:
  UserId user_;
  Timestamp within_;
};

class EditedByQuery : public FolderQuery {
 public:
  EditedByQuery(UserId user, Timestamp within)
      : user_(user), within_(within) {}
  bool Matches(DocumentId doc, const MetaStore& meta, TextStore&,
               Timestamp now) const override {
    auto m = meta.Meta(doc);
    auto it = m.by_user.find(user_);
    if (it == m.by_user.end() || it->second.last_edit == 0) return false;
    return within_ == 0 || it->second.last_edit + within_ >= now;
  }
  std::string Describe() const override {
    return "edited-by(" + user_.ToString() + ")";
  }

 private:
  UserId user_;
  Timestamp within_;
};

class CreatedByQuery : public FolderQuery {
 public:
  explicit CreatedByQuery(UserId user) : user_(user) {}
  bool Matches(DocumentId doc, const MetaStore&, TextStore& text,
               Timestamp) const override {
    auto info = text.GetDocumentInfo(doc);
    return info.ok() && info->creator == user_;
  }
  std::string Describe() const override {
    return "created-by(" + user_.ToString() + ")";
  }

 private:
  UserId user_;
};

class StateIsQuery : public FolderQuery {
 public:
  explicit StateIsQuery(std::string state) : state_(std::move(state)) {}
  bool Matches(DocumentId doc, const MetaStore&, TextStore& text,
               Timestamp) const override {
    auto info = text.GetDocumentInfo(doc);
    return info.ok() && info->state == state_;
  }
  std::string Describe() const override { return "state(" + state_ + ")"; }

 private:
  std::string state_;
};

class NameContainsQuery : public FolderQuery {
 public:
  explicit NameContainsQuery(std::string needle)
      : needle_(std::move(needle)) {}
  bool Matches(DocumentId doc, const MetaStore&, TextStore& text,
               Timestamp) const override {
    auto info = text.GetDocumentInfo(doc);
    return info.ok() && info->name.find(needle_) != std::string::npos;
  }
  std::string Describe() const override { return "name~(" + needle_ + ")"; }

 private:
  std::string needle_;
};

class SizeQuery : public FolderQuery {
 public:
  SizeQuery(uint64_t chars, bool at_least)
      : chars_(chars), at_least_(at_least) {}
  bool Matches(DocumentId doc, const MetaStore&, TextStore& text,
               Timestamp) const override {
    auto info = text.GetDocumentInfo(doc);
    if (!info.ok()) return false;
    return at_least_ ? info->length >= chars_ : info->length <= chars_;
  }
  std::string Describe() const override {
    return std::string(at_least_ ? "size>=" : "size<=") +
           std::to_string(chars_);
  }

 private:
  uint64_t chars_;
  bool at_least_;
};

class PropertyIsQuery : public FolderQuery {
 public:
  PropertyIsQuery(std::string key, std::string value)
      : key_(std::move(key)), value_(std::move(value)) {}
  bool Matches(DocumentId doc, const MetaStore& meta, TextStore&,
               Timestamp) const override {
    auto v = meta.GetProperty(doc, key_);
    return v.ok() && *v == value_;
  }
  std::string Describe() const override {
    return "prop(" + key_ + "=" + value_ + ")";
  }

 private:
  std::string key_, value_;
};

class BoolQuery : public FolderQuery {
 public:
  BoolQuery(std::vector<std::unique_ptr<FolderQuery>> parts, bool conjunction)
      : parts_(std::move(parts)), conjunction_(conjunction) {}
  bool Matches(DocumentId doc, const MetaStore& meta, TextStore& text,
               Timestamp now) const override {
    for (const auto& part : parts_) {
      bool m = part->Matches(doc, meta, text, now);
      if (conjunction_ && !m) return false;
      if (!conjunction_ && m) return true;
    }
    return conjunction_;
  }
  std::string Describe() const override {
    std::string out = conjunction_ ? "and(" : "or(";
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += ",";
      out += parts_[i]->Describe();
    }
    return out + ")";
  }

 private:
  std::vector<std::unique_ptr<FolderQuery>> parts_;
  bool conjunction_;
};

class NotQuery : public FolderQuery {
 public:
  explicit NotQuery(std::unique_ptr<FolderQuery> part)
      : part_(std::move(part)) {}
  bool Matches(DocumentId doc, const MetaStore& meta, TextStore& text,
               Timestamp now) const override {
    return !part_->Matches(doc, meta, text, now);
  }
  std::string Describe() const override {
    return "not(" + part_->Describe() + ")";
  }

 private:
  std::unique_ptr<FolderQuery> part_;
};

}  // namespace

std::unique_ptr<FolderQuery> FolderQuery::ReadBy(UserId user,
                                                 Timestamp within) {
  return std::make_unique<ReadByQuery>(user, within);
}
std::unique_ptr<FolderQuery> FolderQuery::EditedBy(UserId user,
                                                   Timestamp within) {
  return std::make_unique<EditedByQuery>(user, within);
}
std::unique_ptr<FolderQuery> FolderQuery::CreatedBy(UserId user) {
  return std::make_unique<CreatedByQuery>(user);
}
std::unique_ptr<FolderQuery> FolderQuery::StateIs(std::string state) {
  return std::make_unique<StateIsQuery>(std::move(state));
}
std::unique_ptr<FolderQuery> FolderQuery::NameContains(std::string needle) {
  return std::make_unique<NameContainsQuery>(std::move(needle));
}
std::unique_ptr<FolderQuery> FolderQuery::SizeAtLeast(uint64_t chars) {
  return std::make_unique<SizeQuery>(chars, true);
}
std::unique_ptr<FolderQuery> FolderQuery::SizeAtMost(uint64_t chars) {
  return std::make_unique<SizeQuery>(chars, false);
}
std::unique_ptr<FolderQuery> FolderQuery::PropertyIs(std::string key,
                                                     std::string value) {
  return std::make_unique<PropertyIsQuery>(std::move(key), std::move(value));
}
std::unique_ptr<FolderQuery> FolderQuery::And(
    std::vector<std::unique_ptr<FolderQuery>> parts) {
  return std::make_unique<BoolQuery>(std::move(parts), true);
}
std::unique_ptr<FolderQuery> FolderQuery::Or(
    std::vector<std::unique_ptr<FolderQuery>> parts) {
  return std::make_unique<BoolQuery>(std::move(parts), false);
}
std::unique_ptr<FolderQuery> FolderQuery::Not(
    std::unique_ptr<FolderQuery> part) {
  return std::make_unique<NotQuery>(std::move(part));
}

FolderManager::FolderManager(Database* db, TextStore* text, MetaStore* meta)
    : db_(db), text_(text), meta_(meta) {}

Status FolderManager::Init() {
  auto folders = db_->EnsureTable("tendax_folders", FoldersSchema());
  if (!folders.ok()) return folders.status();
  folders_table_ = *folders;
  auto placements =
      db_->EnsureTable("tendax_folder_docs", PlacementsSchema());
  if (!placements.ok()) return placements.status();
  placements_table_ = *placements;

  uint64_t max_folder = 0;
  TENDAX_RETURN_IF_ERROR(
      folders_table_->Scan([&](RecordId, const Record& rec) {
        StaticFolderInfo f;
        f.id = FolderId(rec.GetUint(0));
        f.parent = FolderId(rec.GetUint(1));
        f.name = rec.GetString(2);
        max_folder = std::max(max_folder, f.id.value);
        static_folders_[f.id.value] = f;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      placements_table_->Scan([&](RecordId rid, const Record& rec) {
        placements_[{rec.GetUint(0), rec.GetUint(1)}] = rid;
        return true;
      }));
  next_folder_id_ = max_folder + 1;

  // Incremental maintenance: each audit event refreshes only its document.
  meta_->AddAuditListener(
      [this](const AuditEntry& entry) { RefreshDocument(entry.doc); });
  return Status::OK();
}

Result<FolderId> FolderManager::CreateFolder(UserId user, FolderId parent,
                                             const std::string& name) {
  StaticFolderInfo f;
  f.id = FolderId(next_folder_id_.fetch_add(1));
  f.parent = parent;
  f.name = name;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) {
    return folders_table_
        ->Insert(txn, Record({f.id.value, parent.value, name}))
        .status();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  static_folders_[f.id.value] = f;
  return f.id;
}

Status FolderManager::PlaceDocument(UserId user, FolderId folder,
                                    DocumentId doc) {
  {
    MutexLock lock(mu_);
    if (!static_folders_.count(folder.value)) {
      return Status::NotFound("unknown folder");
    }
    if (placements_.count({folder.value, doc.value})) {
      return Status::AlreadyExists("document already in folder");
    }
  }
  RecordId rid;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    auto r = placements_table_->Insert(txn,
                                       Record({folder.value, doc.value}));
    if (!r.ok()) return r.status();
    rid = *r;
    ChangeEvent ev;
    ev.kind = ChangeKind::kFolderChanged;
    ev.doc = doc;
    ev.user = user;
    ev.at = db_->clock()->NowMicros();
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  placements_[{folder.value, doc.value}] = rid;
  return Status::OK();
}

Status FolderManager::RemoveDocument(UserId user, FolderId folder,
                                     DocumentId doc) {
  RecordId rid;
  {
    MutexLock lock(mu_);
    auto it = placements_.find({folder.value, doc.value});
    if (it == placements_.end()) {
      return Status::NotFound("document not in folder");
    }
    rid = it->second;
  }
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) {
    return placements_table_->Delete(txn, rid);
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  placements_.erase({folder.value, doc.value});
  return Status::OK();
}

Result<std::vector<DocumentId>> FolderManager::FolderContents(
    FolderId folder) const {
  MutexLock lock(mu_);
  if (!static_folders_.count(folder.value)) {
    return Status::NotFound("unknown folder");
  }
  std::vector<DocumentId> out;
  auto lo = placements_.lower_bound({folder.value, 0});
  for (auto it = lo; it != placements_.end() && it->first.first == folder.value;
       ++it) {
    out.push_back(DocumentId(it->first.second));
  }
  return out;
}

std::vector<StaticFolderInfo> FolderManager::Folders() const {
  MutexLock lock(mu_);
  std::vector<StaticFolderInfo> out;
  for (const auto& [id, f] : static_folders_) out.push_back(f);
  return out;
}

std::vector<FolderId> FolderManager::PlacementsOf(DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<FolderId> out;
  for (const auto& [key, rid] : placements_) {
    if (key.second == doc.value) out.push_back(FolderId(key.first));
  }
  return out;
}

Result<FolderId> FolderManager::CreateDynamicFolder(
    const std::string& name, std::unique_ptr<FolderQuery> query) {
  FolderId id(next_folder_id_.fetch_add(1));
  {
    MutexLock lock(mu_);
    DynamicFolder folder;
    folder.id = id;
    folder.name = name;
    folder.query = std::move(query);
    dynamic_folders_[id.value] = std::move(folder);
  }
  TENDAX_RETURN_IF_ERROR(FullRefresh(id));
  return id;
}

Result<std::set<DocumentId>> FolderManager::DynamicContents(
    FolderId folder) const {
  MutexLock lock(mu_);
  auto it = dynamic_folders_.find(folder.value);
  if (it == dynamic_folders_.end()) {
    return Status::NotFound("unknown dynamic folder");
  }
  return it->second.members;
}

Status FolderManager::FullRefresh(FolderId folder) {
  Timestamp now = db_->clock()->NowMicros();
  std::vector<DocumentId> docs = text_->ListDocuments();
  MutexLock lock(mu_);
  auto it = dynamic_folders_.find(folder.value);
  if (it == dynamic_folders_.end()) {
    return Status::NotFound("unknown dynamic folder");
  }
  DynamicFolder& df = it->second;
  std::set<DocumentId> members;
  for (DocumentId doc : docs) {
    if (df.query->Matches(doc, *meta_, *text_, now)) members.insert(doc);
  }
  if (members != df.members) {
    ++stats_.membership_changes;
    df.members = std::move(members);
  }
  ++stats_.full_refreshes;
  return Status::OK();
}

void FolderManager::RefreshDocument(DocumentId doc) {
  if (!doc.valid()) return;
  Timestamp now = db_->clock()->NowMicros();
  MutexLock lock(mu_);
  for (auto& [id, df] : dynamic_folders_) {
    bool matches = df.query->Matches(doc, *meta_, *text_, now);
    bool present = df.members.count(doc) > 0;
    if (matches && !present) {
      df.members.insert(doc);
      ++stats_.membership_changes;
    } else if (!matches && present) {
      df.members.erase(doc);
      ++stats_.membership_changes;
    }
  }
  ++stats_.incremental_refreshes;
}

FolderManagerStats FolderManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace tendax

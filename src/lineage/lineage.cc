#include "lineage/lineage.h"

#include "text/utf8.h"

namespace tendax {

const char* SourceKindName(SourceKind kind) {
  switch (kind) {
    case SourceKind::kTyped:
      return "typed";
    case SourceKind::kInternal:
      return "internal";
    case SourceKind::kExternal:
      return "external";
  }
  return "?";
}

LineageAnalyzer::LineageAnalyzer(TextStore* text) : text_(text) {}

namespace {

SourceKind KindOf(const CharInfo& info) {
  if (info.src_doc.valid()) return SourceKind::kInternal;
  if (!info.src_external.empty()) return SourceKind::kExternal;
  return SourceKind::kTyped;
}

bool SameProvenance(const CharInfo& a, const CharInfo& b) {
  return KindOf(a) == KindOf(b) && a.src_doc == b.src_doc &&
         a.src_external == b.src_external && a.author == b.author;
}

}  // namespace

Result<std::vector<LineageSegment>> LineageAnalyzer::ForRange(DocumentId doc,
                                                              size_t pos,
                                                              size_t len) {
  auto infos = text_->RangeInfo(doc, pos, len);
  if (!infos.ok()) return infos.status();
  std::vector<LineageSegment> segments;
  for (size_t i = 0; i < infos->size(); ++i) {
    const CharInfo& info = (*infos)[i];
    if (!segments.empty() &&
        SameProvenance((*infos)[i - 1], info)) {
      LineageSegment& seg = segments.back();
      seg.len += 1;
      AppendUtf8(&seg.text, info.cp);
      continue;
    }
    LineageSegment seg;
    seg.pos = pos + i;
    seg.len = 1;
    seg.kind = KindOf(info);
    seg.src_doc = info.src_doc;
    seg.src_external = info.src_external;
    seg.author = info.author;
    AppendUtf8(&seg.text, info.cp);
    segments.push_back(std::move(seg));
  }
  return segments;
}

Result<std::vector<LineageSegment>> LineageAnalyzer::ForDocument(
    DocumentId doc) {
  auto length = text_->Length(doc);
  if (!length.ok()) return length.status();
  if (*length == 0) return std::vector<LineageSegment>();
  return ForRange(doc, 0, *length);
}

Result<LineageGraph> LineageAnalyzer::BuildGraph() {
  LineageGraph graph;
  for (DocumentId doc : text_->ListDocuments()) {
    graph.docs.insert(doc.value);
    auto segments = ForDocument(doc);
    if (!segments.ok()) return segments.status();
    for (const LineageSegment& seg : *segments) {
      switch (seg.kind) {
        case SourceKind::kInternal:
          if (seg.src_doc != doc) {
            graph.internal_edges[{seg.src_doc.value, doc.value}] += seg.len;
          }
          break;
        case SourceKind::kExternal:
          graph.external_edges[{seg.src_external, doc.value}] += seg.len;
          break;
        case SourceKind::kTyped:
          break;
      }
    }
  }
  return graph;
}

Result<uint64_t> LineageAnalyzer::CitationCount(DocumentId doc) {
  auto graph = BuildGraph();
  if (!graph.ok()) return graph.status();
  std::set<uint64_t> citing;
  for (const auto& [edge, count] : graph->internal_edges) {
    if (edge.first == doc.value) citing.insert(edge.second);
  }
  return static_cast<uint64_t>(citing.size());
}

std::string LineageAnalyzer::RenderDot(const LineageGraph& graph) {
  std::string out = "digraph lineage {\n  rankdir=LR;\n";
  for (uint64_t doc : graph.docs) {
    auto info = text_->GetDocumentInfo(DocumentId(doc));
    std::string label = info.ok() ? info->name : ("doc" + std::to_string(doc));
    out += "  d" + std::to_string(doc) + " [label=\"" + label +
           "\", shape=box];\n";
  }
  std::set<std::string> externals;
  for (const auto& [edge, count] : graph.external_edges) {
    externals.insert(edge.first);
  }
  size_t ext_idx = 0;
  std::map<std::string, std::string> ext_nodes;
  for (const std::string& ext : externals) {
    std::string node = "x" + std::to_string(ext_idx++);
    ext_nodes[ext] = node;
    out += "  " + node + " [label=\"" + ext +
           "\", shape=ellipse, style=dashed];\n";
  }
  for (const auto& [edge, count] : graph.internal_edges) {
    out += "  d" + std::to_string(edge.first) + " -> d" +
           std::to_string(edge.second) + " [label=\"" +
           std::to_string(count) + " chars\"];\n";
  }
  for (const auto& [edge, count] : graph.external_edges) {
    out += "  " + ext_nodes[edge.first] + " -> d" +
           std::to_string(edge.second) + " [label=\"" +
           std::to_string(count) + " chars\"];\n";
  }
  out += "}\n";
  return out;
}

std::string LineageAnalyzer::RenderAscii(const LineageGraph& graph) {
  std::string out;
  auto doc_name = [&](uint64_t id) {
    auto info = text_->GetDocumentInfo(DocumentId(id));
    return info.ok() ? info->name : ("doc" + std::to_string(id));
  };
  for (const auto& [edge, count] : graph.internal_edges) {
    out += doc_name(edge.first) + " --[" + std::to_string(count) +
           " chars]--> " + doc_name(edge.second) + "\n";
  }
  for (const auto& [edge, count] : graph.external_edges) {
    out += "<" + edge.first + "> --[" + std::to_string(count) +
           " chars]--> " + doc_name(edge.second) + "\n";
  }
  if (out.empty()) out = "(no copy-paste provenance recorded)\n";
  return out;
}

Result<std::string> LineageAnalyzer::RenderDocumentLineage(DocumentId doc) {
  auto segments = ForDocument(doc);
  if (!segments.ok()) return segments.status();
  auto info = text_->GetDocumentInfo(doc);
  if (!info.ok()) return info.status();
  std::string out = "lineage of '" + info->name + "':\n";
  for (const LineageSegment& seg : *segments) {
    std::string preview = seg.text.substr(0, 24);
    for (char& c : preview) {
      if (c == '\n') c = ' ';
    }
    out += "  [" + std::to_string(seg.pos) + "," +
           std::to_string(seg.pos + seg.len) + ") ";
    switch (seg.kind) {
      case SourceKind::kTyped:
        out += "typed by user " + std::to_string(seg.author.value);
        break;
      case SourceKind::kInternal: {
        auto src = text_->GetDocumentInfo(seg.src_doc);
        out += "copied from '" +
               (src.ok() ? src->name : seg.src_doc.ToString()) + "'";
        break;
      }
      case SourceKind::kExternal:
        out += "imported from <" + seg.src_external + ">";
        break;
    }
    out += "  \"" + preview + (seg.text.size() > 24 ? "..." : "") + "\"\n";
  }
  return out;
}

}  // namespace tendax

#ifndef TENDAX_LINEAGE_LINEAGE_H_
#define TENDAX_LINEAGE_LINEAGE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "text/text_store.h"
#include "util/ids.h"
#include "util/result.h"

namespace tendax {

/// Where a stretch of characters came from.
enum class SourceKind : uint8_t {
  kTyped = 1,     // authored in place
  kInternal = 2,  // pasted from another TeNDaX document
  kExternal = 3,  // pasted from outside (file, web, ...)
};

const char* SourceKindName(SourceKind kind);

/// A maximal run of consecutive characters sharing one provenance.
struct LineageSegment {
  size_t pos = 0;
  size_t len = 0;
  SourceKind kind = SourceKind::kTyped;
  DocumentId src_doc;        // kInternal
  std::string src_external;  // kExternal
  UserId author;
  std::string text;
};

/// The document-space provenance graph: an edge (src -> dst, n) means n
/// characters in dst were copied from src. External sources are labeled
/// nodes of their own.
struct LineageGraph {
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> internal_edges;
  std::map<std::pair<std::string, uint64_t>, uint64_t> external_edges;
  std::set<uint64_t> docs;

  uint64_t EdgeCount() const {
    return internal_edges.size() + external_edges.size();
  }
};

/// Data-lineage queries over the per-character copy-paste references
/// (paper Sec. 3 bullet 4 / Fig. 1): provenance of a range, the provenance
/// graph of the whole document space, citation counts, and the Fig. 1
/// visualization as DOT and ASCII.
class LineageAnalyzer {
 public:
  explicit LineageAnalyzer(TextStore* text);

  /// Groups [pos, pos+len) of `doc` into maximal same-provenance segments.
  Result<std::vector<LineageSegment>> ForRange(DocumentId doc, size_t pos,
                                               size_t len);
  Result<std::vector<LineageSegment>> ForDocument(DocumentId doc);

  /// Builds the provenance graph over every live character of every
  /// document (full scan; cache at the caller if needed).
  Result<LineageGraph> BuildGraph();

  /// Number of distinct documents containing characters copied from `doc` —
  /// the "most cited" ranking signal.
  Result<uint64_t> CitationCount(DocumentId doc);

  /// Graphviz DOT rendering of the graph (the Fig. 1 artifact).
  std::string RenderDot(const LineageGraph& graph);
  /// Terminal rendering: one line per edge, with character counts.
  std::string RenderAscii(const LineageGraph& graph);
  /// Per-segment provenance view of one document (Fig. 1's detail pane).
  Result<std::string> RenderDocumentLineage(DocumentId doc);

 private:
  TextStore* const text_;
};

}  // namespace tendax

#endif  // TENDAX_LINEAGE_LINEAGE_H_

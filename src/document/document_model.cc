#include "document/document_model.h"

#include <algorithm>

#include "text/utf8.h"

namespace tendax {

namespace {

Schema ElementsSchema() {
  return Schema({{"elem_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"parent", ColumnType::kUint64},
                 {"ord", ColumnType::kUint64},
                 {"type", ColumnType::kString},
                 {"label", ColumnType::kString},
                 {"anchor_start", ColumnType::kUint64},
                 {"anchor_end", ColumnType::kUint64},
                 {"author", ColumnType::kUint64},
                 {"at", ColumnType::kUint64}});
}

Schema LayoutSchema() {
  return Schema({{"run_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"start_char", ColumnType::kUint64},
                 {"end_char", ColumnType::kUint64},
                 {"attr", ColumnType::kString},
                 {"value", ColumnType::kString},
                 {"author", ColumnType::kUint64},
                 {"at", ColumnType::kUint64}});
}

Schema NotesSchema() {
  return Schema({{"note_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"anchor", ColumnType::kUint64},
                 {"author", ColumnType::kUint64},
                 {"at", ColumnType::kUint64},
                 {"text", ColumnType::kString}});
}

Schema ObjectsSchema() {
  return Schema({{"obj_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"kind", ColumnType::kString},
                 {"anchor", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"author", ColumnType::kUint64},
                 {"at", ColumnType::kUint64},
                 {"meta", ColumnType::kString}});
}

Schema BlobsSchema() {
  return Schema({{"obj_id", ColumnType::kUint64},
                 {"seq", ColumnType::kUint64},
                 {"bytes", ColumnType::kString}});
}

/// Blob chunk size, safely below the page record limit.
constexpr size_t kBlobChunk = 3500;

}  // namespace

DocumentModel::DocumentModel(Database* db, TextStore* text)
    : db_(db), text_(text) {}

Status DocumentModel::Init() {
  auto elements = db_->EnsureTable("tendax_elements", ElementsSchema());
  if (!elements.ok()) return elements.status();
  elements_table_ = *elements;
  auto layout = db_->EnsureTable("tendax_layout", LayoutSchema());
  if (!layout.ok()) return layout.status();
  layout_table_ = *layout;
  auto notes = db_->EnsureTable("tendax_notes", NotesSchema());
  if (!notes.ok()) return notes.status();
  notes_table_ = *notes;
  auto objects = db_->EnsureTable("tendax_objects", ObjectsSchema());
  if (!objects.ok()) return objects.status();
  objects_table_ = *objects;
  auto blobs = db_->EnsureTable("tendax_blobs", BlobsSchema());
  if (!blobs.ok()) return blobs.status();
  blobs_table_ = *blobs;

  uint64_t max_elem = 0, max_run = 0, max_note = 0, max_obj = 0;
  TENDAX_RETURN_IF_ERROR(
      elements_table_->Scan([&](RecordId rid, const Record& rec) {
        ElementInfo e;
        e.id = ElementId(rec.GetUint(0));
        e.doc = DocumentId(rec.GetUint(1));
        e.parent = ElementId(rec.GetUint(2));
        e.order = rec.GetUint(3);
        e.type = rec.GetString(4);
        e.label = rec.GetString(5);
        e.anchor_start = CharId(rec.GetUint(6));
        e.anchor_end = CharId(rec.GetUint(7));
        e.author = UserId(rec.GetUint(8));
        e.at = rec.GetUint(9);
        max_elem = std::max(max_elem, e.id.value);
        elements_[e.id.value] = e;
        element_rids_[e.id.value] = rid;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      layout_table_->Scan([&](RecordId, const Record& rec) {
        LayoutRun r;
        r.run_id = rec.GetUint(0);
        r.doc = DocumentId(rec.GetUint(1));
        r.start = CharId(rec.GetUint(2));
        r.end = CharId(rec.GetUint(3));
        r.attr = rec.GetString(4);
        r.value = rec.GetString(5);
        r.author = UserId(rec.GetUint(6));
        r.at = rec.GetUint(7);
        max_run = std::max(max_run, r.run_id);
        runs_[r.run_id] = r;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      notes_table_->Scan([&](RecordId, const Record& rec) {
        NoteInfo n;
        n.id = NoteId(rec.GetUint(0));
        n.doc = DocumentId(rec.GetUint(1));
        n.anchor = CharId(rec.GetUint(2));
        n.author = UserId(rec.GetUint(3));
        n.at = rec.GetUint(4);
        n.text = rec.GetString(5);
        max_note = std::max(max_note, n.id.value);
        notes_[n.id.value] = n;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      objects_table_->Scan([&](RecordId, const Record& rec) {
        ObjectInfo o;
        o.id = ObjectId(rec.GetUint(0));
        o.doc = DocumentId(rec.GetUint(1));
        o.kind = rec.GetString(2);
        o.anchor = CharId(rec.GetUint(3));
        o.name = rec.GetString(4);
        o.author = UserId(rec.GetUint(5));
        o.at = rec.GetUint(6);
        o.meta = rec.GetString(7);
        max_obj = std::max(max_obj, o.id.value);
        objects_[o.id.value] = o;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      blobs_table_->Scan([&](RecordId rid, const Record& rec) {
        blob_rids_[{rec.GetUint(0), rec.GetUint(1)}] = rid;
        return true;
      }));
  next_element_id_ = max_elem + 1;
  next_run_id_ = max_run + 1;
  next_note_id_ = max_note + 1;
  next_object_id_ = max_obj + 1;
  return Status::OK();
}

Result<std::unordered_map<uint64_t, size_t>> DocumentModel::PositionIndex(
    DocumentId doc) {
  auto length = text_->Length(doc);
  if (!length.ok()) return length.status();
  std::unordered_map<uint64_t, size_t> index;
  if (*length == 0) return index;
  auto infos = text_->RangeInfo(doc, 0, *length);
  if (!infos.ok()) return infos.status();
  index.reserve(infos->size());
  for (size_t i = 0; i < infos->size(); ++i) {
    index[(*infos)[i].id.value] = i;
  }
  return index;
}

Result<CharId> DocumentModel::AnchorAt(DocumentId doc, size_t pos) {
  auto length = text_->Length(doc);
  if (!length.ok()) return length.status();
  if (*length == 0) return CharId();  // doc-level anchor
  size_t clamped = std::min(pos, static_cast<size_t>(*length - 1));
  auto info = text_->CharAt(doc, clamped);
  if (!info.ok()) return info.status();
  return info->id;
}

Result<ElementId> DocumentModel::CreateElement(UserId user, DocumentId doc,
                                               ElementId parent,
                                               const std::string& type,
                                               const std::string& label,
                                               size_t pos, size_t len) {
  CharId start, end;
  if (len > 0) {
    auto info = text_->RangeInfo(doc, pos, len);
    if (!info.ok()) return info.status();
    start = info->front().id;
    end = info->back().id;
  } else {
    auto anchor = AnchorAt(doc, pos);
    if (!anchor.ok()) return anchor.status();
    start = end = *anchor;
  }
  ElementInfo e;
  e.id = ElementId(next_element_id_.fetch_add(1));
  e.doc = doc;
  e.parent = parent;
  e.type = type;
  e.label = label;
  e.anchor_start = start;
  e.anchor_end = end;
  e.author = user;
  e.at = db_->clock()->NowMicros();
  {
    MutexLock lock(mu_);
    uint64_t max_ord = 0;
    for (const auto& [id, other] : elements_) {
      if (other.doc == doc && other.parent == parent) {
        max_ord = std::max(max_ord, other.order + 1);
      }
    }
    e.order = max_ord;
  }

  RecordId rid;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
        LockMode::kIX));
    auto r = elements_table_->Insert(
        txn, Record({e.id.value, doc.value, parent.value, e.order, type,
                     label, start.value, end.value, user.value,
                     uint64_t{e.at}}));
    if (!r.ok()) return r.status();
    rid = *r;
    ChangeEvent ev;
    ev.kind = ChangeKind::kStructureChanged;
    ev.doc = doc;
    ev.user = user;
    ev.at = e.at;
    ev.detail = type + ":" + label;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  elements_[e.id.value] = e;
  element_rids_[e.id.value] = rid;
  return e.id;
}

Status DocumentModel::RelabelElement(UserId user, ElementId element,
                                     const std::string& label) {
  ElementInfo e;
  RecordId rid;
  {
    MutexLock lock(mu_);
    auto it = elements_.find(element.value);
    if (it == elements_.end()) return Status::NotFound("unknown element");
    e = it->second;
    rid = element_rids_.at(element.value);
  }
  e.label = label;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    auto r = elements_table_->Update(
        txn, rid,
        Record({e.id.value, e.doc.value, e.parent.value, e.order, e.type,
                label, e.anchor_start.value, e.anchor_end.value,
                e.author.value, uint64_t{e.at}}));
    if (!r.ok()) return r.status();
    rid = *r;
    ChangeEvent ev;
    ev.kind = ChangeKind::kStructureChanged;
    ev.doc = e.doc;
    ev.user = user;
    ev.at = db_->clock()->NowMicros();
    ev.detail = "relabel:" + label;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  elements_[element.value] = e;
  element_rids_[element.value] = rid;
  return Status::OK();
}

Status DocumentModel::DeleteElement(UserId user, ElementId element) {
  RecordId rid;
  DocumentId doc;
  {
    MutexLock lock(mu_);
    auto it = elements_.find(element.value);
    if (it == elements_.end()) return Status::NotFound("unknown element");
    doc = it->second.doc;
    rid = element_rids_.at(element.value);
  }
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(elements_table_->Delete(txn, rid));
    ChangeEvent ev;
    ev.kind = ChangeKind::kStructureChanged;
    ev.doc = doc;
    ev.user = user;
    ev.at = db_->clock()->NowMicros();
    ev.detail = "delete-element";
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  elements_.erase(element.value);
  element_rids_.erase(element.value);
  return Status::OK();
}

Result<std::vector<ElementInfo>> DocumentModel::ElementTree(DocumentId doc) {
  auto positions = PositionIndex(doc);
  if (!positions.ok()) return positions.status();
  std::vector<ElementInfo> out;
  {
    MutexLock lock(mu_);
    for (const auto& [id, e] : elements_) {
      if (e.doc == doc) out.push_back(e);
    }
  }
  for (ElementInfo& e : out) {
    auto s = positions->find(e.anchor_start.value);
    auto t = positions->find(e.anchor_end.value);
    if (s != positions->end()) e.start_pos = s->second;
    if (t != positions->end()) e.end_pos = t->second;
  }
  std::sort(out.begin(), out.end(),
            [](const ElementInfo& a, const ElementInfo& b) {
              if (a.parent != b.parent) return a.parent < b.parent;
              return a.order < b.order;
            });
  return out;
}

Result<uint64_t> DocumentModel::ApplyLayout(UserId user, DocumentId doc,
                                            size_t pos, size_t len,
                                            const std::string& attr,
                                            const std::string& value) {
  if (len == 0) return Status::InvalidArgument("empty layout range");
  auto info = text_->RangeInfo(doc, pos, len);
  if (!info.ok()) return info.status();
  LayoutRun r;
  r.run_id = next_run_id_.fetch_add(1);
  r.doc = doc;
  r.start = info->front().id;
  r.end = info->back().id;
  r.attr = attr;
  r.value = value;
  r.author = user;
  r.at = db_->clock()->NowMicros();

  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
        LockMode::kIX));
    auto rid = layout_table_->Insert(
        txn, Record({r.run_id, doc.value, r.start.value, r.end.value, attr,
                     value, user.value, uint64_t{r.at}}));
    if (!rid.ok()) return rid.status();
    ChangeEvent ev;
    ev.kind = ChangeKind::kLayoutChanged;
    ev.doc = doc;
    ev.user = user;
    ev.at = r.at;
    ev.anchor = r.start;
    ev.count = len;
    ev.detail = attr + "=" + value;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  runs_[r.run_id] = r;
  return r.run_id;
}

std::vector<LayoutRun> DocumentModel::RunsFor(DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<LayoutRun> out;
  for (const auto& [id, r] : runs_) {
    if (r.doc == doc) out.push_back(r);
  }
  return out;
}

Result<std::vector<LayoutSpan>> DocumentModel::ComputeSpans(DocumentId doc) {
  auto length = text_->Length(doc);
  if (!length.ok()) return length.status();
  auto positions = PositionIndex(doc);
  if (!positions.ok()) return positions.status();

  // Resolve runs to position intervals. Later runs override earlier ones on
  // the same attribute (last-writer-wins collaborative layouting).
  struct Interval {
    size_t start, end;  // inclusive positions
    std::string attr, value;
    uint64_t run_id;
  };
  std::vector<Interval> intervals;
  {
    MutexLock lock(mu_);
    for (const auto& [id, r] : runs_) {
      if (r.doc != doc) continue;
      auto s = positions->find(r.start.value);
      auto e = positions->find(r.end.value);
      if (s == positions->end() || e == positions->end()) continue;
      size_t lo = std::min(s->second, e->second);
      size_t hi = std::max(s->second, e->second);
      intervals.push_back(Interval{lo, hi, r.attr, r.value, id});
    }
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.run_id < b.run_id;
            });

  // Sweep boundaries.
  std::vector<size_t> cuts = {0, static_cast<size_t>(*length)};
  for (const Interval& iv : intervals) {
    cuts.push_back(iv.start);
    cuts.push_back(iv.end + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<LayoutSpan> spans;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i] >= static_cast<size_t>(*length)) break;
    LayoutSpan span;
    span.start = cuts[i];
    span.end = std::min(cuts[i + 1], static_cast<size_t>(*length));
    for (const Interval& iv : intervals) {
      if (iv.start <= span.start && span.start <= iv.end) {
        span.attrs[iv.attr] = iv.value;  // later run_id overrides
      }
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

Result<std::string> DocumentModel::RenderMarkup(DocumentId doc) {
  auto spans = ComputeSpans(doc);
  if (!spans.ok()) return spans.status();
  std::string out;
  for (const LayoutSpan& span : *spans) {
    auto piece = text_->TextRange(doc, span.start, span.end - span.start);
    if (!piece.ok()) return piece.status();
    if (span.attrs.empty()) {
      out += *piece;
      continue;
    }
    for (const auto& [attr, value] : span.attrs) {
      out += "[" + attr + "=" + value + "]";
    }
    out += *piece;
    for (auto it = span.attrs.rbegin(); it != span.attrs.rend(); ++it) {
      out += "[/" + it->first + "]";
    }
  }
  return out;
}

Result<NoteId> DocumentModel::AddNote(UserId user, DocumentId doc, size_t pos,
                                      const std::string& note_text) {
  auto anchor = AnchorAt(doc, pos);
  if (!anchor.ok()) return anchor.status();
  NoteInfo n;
  n.id = NoteId(next_note_id_.fetch_add(1));
  n.doc = doc;
  n.anchor = *anchor;
  n.author = user;
  n.at = db_->clock()->NowMicros();
  n.text = note_text;

  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    auto rid = notes_table_->Insert(
        txn, Record({n.id.value, doc.value, n.anchor.value, user.value,
                     uint64_t{n.at}, note_text}));
    if (!rid.ok()) return rid.status();
    ChangeEvent ev;
    ev.kind = ChangeKind::kNoteAdded;
    ev.doc = doc;
    ev.user = user;
    ev.at = n.at;
    ev.anchor = n.anchor;
    ev.detail = note_text;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  notes_[n.id.value] = n;
  return n.id;
}

Result<std::vector<NoteInfo>> DocumentModel::Notes(DocumentId doc) {
  auto positions = PositionIndex(doc);
  if (!positions.ok()) return positions.status();
  std::vector<NoteInfo> out;
  {
    MutexLock lock(mu_);
    for (const auto& [id, n] : notes_) {
      if (n.doc == doc) out.push_back(n);
    }
  }
  for (NoteInfo& n : out) {
    auto it = positions->find(n.anchor.value);
    if (it != positions->end()) n.pos = it->second;
  }
  return out;
}

Result<ObjectId> DocumentModel::EmbedImage(UserId user, DocumentId doc,
                                           size_t pos,
                                           const std::string& name,
                                           const std::string& bytes) {
  // Transaction 1: the anchor character enters the text flow.
  std::string anchor_char;
  AppendUtf8(&anchor_char, kObjectAnchorCp);
  auto edit = text_->InsertText(user, doc, pos, anchor_char);
  if (!edit.ok()) return edit.status();
  CharId anchor = edit->chars.front();

  ObjectInfo o;
  o.id = ObjectId(next_object_id_.fetch_add(1));
  o.doc = doc;
  o.kind = "image";
  o.anchor = anchor;
  o.name = name;
  o.author = user;
  o.at = db_->clock()->NowMicros();
  o.meta = std::to_string(bytes.size());

  // Transaction 2: object row. Transactions 3..n: blob chunks.
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    auto rid = objects_table_->Insert(
        txn, Record({o.id.value, doc.value, o.kind, anchor.value, name,
                     user.value, uint64_t{o.at}, o.meta}));
    if (!rid.ok()) return rid.status();
    ChangeEvent ev;
    ev.kind = ChangeKind::kObjectInserted;
    ev.doc = doc;
    ev.user = user;
    ev.at = o.at;
    ev.anchor = anchor;
    ev.detail = "image:" + name;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  for (size_t off = 0, seq = 0; off < bytes.size(); off += kBlobChunk, ++seq) {
    TENDAX_RETURN_IF_ERROR(
        PutBlob(user, o.id, seq, bytes.substr(off, kBlobChunk)));
  }
  MutexLock lock(mu_);
  objects_[o.id.value] = o;
  return o.id;
}

Status DocumentModel::PutBlob(UserId user, ObjectId object, uint64_t seq,
                              const std::string& bytes) {
  RecordId existing;
  bool update = false;
  {
    MutexLock lock(mu_);
    auto it = blob_rids_.find({object.value, seq});
    if (it != blob_rids_.end()) {
      existing = it->second;
      update = true;
    }
  }
  RecordId rid;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    Record rec({object.value, seq, bytes});
    if (update) {
      auto r = blobs_table_->Update(txn, existing, rec);
      if (!r.ok()) return r.status();
      rid = *r;
    } else {
      auto r = blobs_table_->Insert(txn, rec);
      if (!r.ok()) return r.status();
      rid = *r;
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  blob_rids_[{object.value, seq}] = rid;
  return Status::OK();
}

Result<std::string> DocumentModel::ReadBlobs(ObjectId object, uint64_t lo,
                                             uint64_t hi) const {
  std::vector<std::pair<uint64_t, RecordId>> chunks;
  {
    MutexLock lock(mu_);
    auto it = blob_rids_.lower_bound({object.value, lo});
    for (; it != blob_rids_.end() && it->first.first == object.value &&
           it->first.second <= hi;
         ++it) {
      chunks.emplace_back(it->first.second, it->second);
    }
  }
  std::string out;
  for (const auto& [seq, rid] : chunks) {
    auto rec = blobs_table_->Get(rid);
    if (!rec.ok()) return rec.status();
    out += rec->GetString(2);
  }
  return out;
}

Result<std::string> DocumentModel::GetImage(ObjectId object) const {
  {
    MutexLock lock(mu_);
    auto it = objects_.find(object.value);
    if (it == objects_.end() || it->second.kind != "image") {
      return Status::NotFound("no image object " + object.ToString());
    }
  }
  return ReadBlobs(object, 0, UINT64_MAX);
}

Result<ObjectId> DocumentModel::InsertTable(UserId user, DocumentId doc,
                                            size_t pos,
                                            const std::string& name,
                                            uint32_t rows, uint32_t cols) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("table must have at least one cell");
  }
  std::string anchor_char;
  AppendUtf8(&anchor_char, kObjectAnchorCp);
  auto edit = text_->InsertText(user, doc, pos, anchor_char);
  if (!edit.ok()) return edit.status();

  ObjectInfo o;
  o.id = ObjectId(next_object_id_.fetch_add(1));
  o.doc = doc;
  o.kind = "table";
  o.anchor = edit->chars.front();
  o.name = name;
  o.author = user;
  o.at = db_->clock()->NowMicros();
  o.meta = std::to_string(rows) + "," + std::to_string(cols);

  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    auto rid = objects_table_->Insert(
        txn, Record({o.id.value, doc.value, o.kind, o.anchor.value, name,
                     user.value, uint64_t{o.at}, o.meta}));
    if (!rid.ok()) return rid.status();
    ChangeEvent ev;
    ev.kind = ChangeKind::kObjectInserted;
    ev.doc = doc;
    ev.user = user;
    ev.at = o.at;
    ev.anchor = o.anchor;
    ev.detail = "table:" + name;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  objects_[o.id.value] = o;
  return o.id;
}

Result<std::pair<uint32_t, uint32_t>> DocumentModel::TableDims(
    ObjectId table) const {
  MutexLock lock(mu_);
  auto it = objects_.find(table.value);
  if (it == objects_.end() || it->second.kind != "table") {
    return Status::NotFound("no table object " + table.ToString());
  }
  const std::string& meta = it->second.meta;
  size_t comma = meta.find(',');
  if (comma == std::string::npos) {
    return Status::Corruption("bad table meta: " + meta);
  }
  return std::make_pair(
      static_cast<uint32_t>(std::stoul(meta.substr(0, comma))),
      static_cast<uint32_t>(std::stoul(meta.substr(comma + 1))));
}

Status DocumentModel::SetCell(UserId user, ObjectId table, uint32_t row,
                              uint32_t col, const std::string& cell_text) {
  auto dims = TableDims(table);
  if (!dims.ok()) return dims.status();
  if (row >= dims->first || col >= dims->second) {
    return Status::OutOfRange("cell out of table bounds");
  }
  uint64_t seq = static_cast<uint64_t>(row) * dims->second + col;
  return PutBlob(user, table, seq, cell_text);
}

Result<std::string> DocumentModel::GetCell(ObjectId table, uint32_t row,
                                           uint32_t col) const {
  auto dims = TableDims(table);
  if (!dims.ok()) return dims.status();
  if (row >= dims->first || col >= dims->second) {
    return Status::OutOfRange("cell out of table bounds");
  }
  uint64_t seq = static_cast<uint64_t>(row) * dims->second + col;
  return ReadBlobs(table, seq, seq);
}

std::vector<ObjectInfo> DocumentModel::Objects(DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<ObjectInfo> out;
  for (const auto& [id, o] : objects_) {
    if (o.doc == doc) out.push_back(o);
  }
  return out;
}

}  // namespace tendax

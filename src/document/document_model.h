#ifndef TENDAX_DOCUMENT_DOCUMENT_MODEL_H_
#define TENDAX_DOCUMENT_DOCUMENT_MODEL_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// A structure element (section, paragraph, title, …) anchored to a
/// character range. Anchors are character ids, so structure survives
/// concurrent edits around it.
struct ElementInfo {
  ElementId id;
  DocumentId doc;
  ElementId parent;        // invalid = top level
  uint64_t order = 0;      // sibling order
  std::string type;        // "section", "paragraph", "title", ...
  std::string label;
  CharId anchor_start;
  CharId anchor_end;
  UserId author;
  Timestamp at = 0;
  /// Resolved live positions (filled by ElementTree; nullopt if the anchors
  /// were deleted).
  std::optional<size_t> start_pos;
  std::optional<size_t> end_pos;
};

/// One layout attribute run (bold, font, size, …) over a character range.
struct LayoutRun {
  uint64_t run_id = 0;
  DocumentId doc;
  CharId start;
  CharId end;
  std::string attr;
  std::string value;
  UserId author;
  Timestamp at = 0;
};

/// A contiguous stretch of text with a resolved set of layout attributes.
struct LayoutSpan {
  size_t start = 0;  // position (inclusive)
  size_t end = 0;    // position (exclusive)
  std::map<std::string, std::string> attrs;
};

/// An annotation anchored to one character (or the document if anchor 0).
struct NoteInfo {
  NoteId id;
  DocumentId doc;
  CharId anchor;
  UserId author;
  Timestamp at = 0;
  std::string text;
  std::optional<size_t> pos;  // resolved position, if the anchor is live
};

/// An embedded object: an image blob or a table, anchored at an object
/// replacement character (U+FFFC) in the text flow.
struct ObjectInfo {
  ObjectId id;
  DocumentId doc;
  std::string kind;  // "image" | "table"
  CharId anchor;
  std::string name;
  UserId author;
  Timestamp at = 0;
  std::string meta;  // kind-specific, e.g. "rows,cols" for tables
};

/// Everything in a TeNDaX document beyond raw characters: the structure
/// tree, collaborative layout, notes, and embedded images/tables. Each
/// mutating call commits one (or, for object embedding, a short sequence
/// of) real-time transactions — matching the paper's "one or several
/// database transactions" per editing action.
class DocumentModel {
 public:
  /// The object replacement character used as an embed anchor.
  static constexpr uint32_t kObjectAnchorCp = 0xFFFC;

  DocumentModel(Database* db, TextStore* text);

  Status Init();

  // --- structure ---

  /// Anchors a new element to the live range [pos, pos+len) (len 0 makes a
  /// point anchor at pos; an empty document yields a doc-level element).
  Result<ElementId> CreateElement(UserId user, DocumentId doc,
                                  ElementId parent, const std::string& type,
                                  const std::string& label, size_t pos,
                                  size_t len);
  Status RelabelElement(UserId user, ElementId element,
                        const std::string& label);
  Status DeleteElement(UserId user, ElementId element);
  /// Elements of `doc` in (parent, order) order with resolved positions.
  Result<std::vector<ElementInfo>> ElementTree(DocumentId doc);

  // --- layout ---

  Result<uint64_t> ApplyLayout(UserId user, DocumentId doc, size_t pos,
                               size_t len, const std::string& attr,
                               const std::string& value);
  std::vector<LayoutRun> RunsFor(DocumentId doc) const;
  /// Resolves all live runs into non-overlapping attribute spans covering
  /// the document. Runs whose anchors were deleted are skipped.
  Result<std::vector<LayoutSpan>> ComputeSpans(DocumentId doc);
  /// Text with inline markers, e.g. "plain [bold=true]fat[/bold] plain".
  Result<std::string> RenderMarkup(DocumentId doc);

  // --- notes ---

  Result<NoteId> AddNote(UserId user, DocumentId doc, size_t pos,
                         const std::string& text);
  Result<std::vector<NoteInfo>> Notes(DocumentId doc);

  // --- embedded objects ---

  /// Inserts an image: an anchor character at `pos` plus the blob.
  Result<ObjectId> EmbedImage(UserId user, DocumentId doc, size_t pos,
                              const std::string& name,
                              const std::string& bytes);
  Result<std::string> GetImage(ObjectId object) const;

  /// Inserts an empty rows x cols table at `pos`.
  Result<ObjectId> InsertTable(UserId user, DocumentId doc, size_t pos,
                               const std::string& name, uint32_t rows,
                               uint32_t cols);
  Status SetCell(UserId user, ObjectId table, uint32_t row, uint32_t col,
                 const std::string& text);
  Result<std::string> GetCell(ObjectId table, uint32_t row,
                              uint32_t col) const;
  Result<std::pair<uint32_t, uint32_t>> TableDims(ObjectId table) const;

  std::vector<ObjectInfo> Objects(DocumentId doc) const;

 private:
  /// Builds char-id -> live position for a document (one RangeInfo pass).
  Result<std::unordered_map<uint64_t, size_t>> PositionIndex(DocumentId doc);
  Result<CharId> AnchorAt(DocumentId doc, size_t pos);
  Status PutBlob(UserId user, ObjectId object, uint64_t seq,
                 const std::string& bytes);
  Result<std::string> ReadBlobs(ObjectId object, uint64_t lo,
                                uint64_t hi) const;

  Database* const db_;
  TextStore* const text_;

  HeapTable* elements_table_ = nullptr;
  HeapTable* layout_table_ = nullptr;
  HeapTable* notes_table_ = nullptr;
  HeapTable* objects_table_ = nullptr;
  HeapTable* blobs_table_ = nullptr;

  // Guards the structure caches only; always released before RunInTxn, so
  // it never nests with the table/txn locks it sits above.
  mutable Mutex mu_{"docmodel.mu", lockorder::kRankDocument};
  std::map<uint64_t, ElementInfo> elements_
      TENDAX_GUARDED_BY(mu_);  // by element id
  std::unordered_map<uint64_t, RecordId> element_rids_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, LayoutRun> runs_ TENDAX_GUARDED_BY(mu_);  // by run id
  std::map<uint64_t, NoteInfo> notes_ TENDAX_GUARDED_BY(mu_);  // by note id
  std::map<uint64_t, ObjectInfo> objects_
      TENDAX_GUARDED_BY(mu_);  // by object id
  std::map<std::pair<uint64_t, uint64_t>, RecordId> blob_rids_
      TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_element_id_{1};
  std::atomic<uint64_t> next_run_id_{1};
  std::atomic<uint64_t> next_note_id_{1};
  std::atomic<uint64_t> next_object_id_{1};
};

}  // namespace tendax

#endif  // TENDAX_DOCUMENT_DOCUMENT_MODEL_H_

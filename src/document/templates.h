#ifndef TENDAX_DOCUMENT_TEMPLATES_H_
#define TENDAX_DOCUMENT_TEMPLATES_H_

#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "document/document_model.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// One section of a document template.
struct TemplateSection {
  std::string type;         // "title", "section", "paragraph", ...
  std::string label;
  std::string placeholder;  // initial text
  std::map<std::string, std::string> layout;  // attrs applied to the text
};

/// A named document template.
struct TemplateInfo {
  uint64_t id = 0;
  std::string name;
  UserId creator;
  Timestamp created_at = 0;
  std::vector<TemplateSection> sections;
};

/// Reusable document blueprints — the paper lists "template definitions"
/// among the captured structure metadata. A template is an ordered list of
/// typed sections with placeholder text and layout; instantiating one
/// creates a document, types the placeholders, anchors a structure element
/// per section and applies the section layout — all as the usual sequence
/// of committed transactions.
class TemplateStore {
 public:
  TemplateStore(Database* db, TextStore* text, DocumentModel* docs);

  Status Init();

  Result<uint64_t> Define(UserId user, const std::string& name,
                          std::vector<TemplateSection> sections);
  Result<TemplateInfo> Get(const std::string& name) const;
  std::vector<std::string> TemplateNames() const;

  /// Creates `doc_name` from the template and returns the new document.
  Result<DocumentId> Instantiate(UserId user, const std::string& name,
                                 const std::string& doc_name);

 private:
  Database* const db_;
  TextStore* const text_;
  DocumentModel* const docs_;

  HeapTable* table_ = nullptr;
  // Cache of defined templates; released before Instantiate's transactions.
  mutable Mutex mu_{"templates.mu", lockorder::kRankDocument};
  std::map<std::string, TemplateInfo> templates_ TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_template_id_{1};
};

}  // namespace tendax

#endif  // TENDAX_DOCUMENT_TEMPLATES_H_

#include "document/templates.h"

#include <algorithm>

namespace tendax {

namespace {

Schema TemplatesSchema() {
  // One row per template section; layout serialized "attr=value;attr=value".
  return Schema({{"template_id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"creator", ColumnType::kUint64},
                 {"created_at", ColumnType::kUint64},
                 {"seq", ColumnType::kUint64},
                 {"type", ColumnType::kString},
                 {"label", ColumnType::kString},
                 {"placeholder", ColumnType::kString},
                 {"layout", ColumnType::kString}});
}

std::string SerializeLayout(const std::map<std::string, std::string>& attrs) {
  std::string out;
  for (const auto& [attr, value] : attrs) {
    if (!out.empty()) out += ";";
    out += attr + "=" + value;
  }
  return out;
}

std::map<std::string, std::string> ParseLayout(const std::string& text) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    std::string part = text.substr(pos, semi - pos);
    size_t eq = part.find('=');
    if (eq != std::string::npos) {
      out[part.substr(0, eq)] = part.substr(eq + 1);
    }
    pos = semi + 1;
  }
  return out;
}

}  // namespace

TemplateStore::TemplateStore(Database* db, TextStore* text,
                             DocumentModel* docs)
    : db_(db), text_(text), docs_(docs) {}

Status TemplateStore::Init() {
  auto table = db_->EnsureTable("tendax_templates", TemplatesSchema());
  if (!table.ok()) return table.status();
  table_ = *table;

  uint64_t max_id = 0;
  std::map<uint64_t, std::map<uint64_t, TemplateSection>> sections_by_id;
  std::map<uint64_t, TemplateInfo> headers;
  TENDAX_RETURN_IF_ERROR(table_->Scan([&](RecordId, const Record& rec) {
    uint64_t id = rec.GetUint(0);
    max_id = std::max(max_id, id);
    TemplateInfo& info = headers[id];
    info.id = id;
    info.name = rec.GetString(1);
    info.creator = UserId(rec.GetUint(2));
    info.created_at = rec.GetUint(3);
    TemplateSection section;
    section.type = rec.GetString(5);
    section.label = rec.GetString(6);
    section.placeholder = rec.GetString(7);
    section.layout = ParseLayout(rec.GetString(8));
    sections_by_id[id][rec.GetUint(4)] = std::move(section);
    return true;
  }));
  for (auto& [id, info] : headers) {
    for (auto& [seq, section] : sections_by_id[id]) {
      info.sections.push_back(std::move(section));
    }
    templates_[info.name] = std::move(info);
  }
  next_template_id_ = max_id + 1;
  return Status::OK();
}

Result<uint64_t> TemplateStore::Define(UserId user, const std::string& name,
                                       std::vector<TemplateSection> sections) {
  if (sections.empty()) {
    return Status::InvalidArgument("a template needs at least one section");
  }
  {
    MutexLock lock(mu_);
    if (templates_.count(name)) {
      return Status::AlreadyExists("template '" + name + "' exists");
    }
  }
  TemplateInfo info;
  info.id = next_template_id_.fetch_add(1);
  info.name = name;
  info.creator = user;
  info.created_at = db_->clock()->NowMicros();
  info.sections = std::move(sections);

  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    for (size_t i = 0; i < info.sections.size(); ++i) {
      const TemplateSection& s = info.sections[i];
      auto rid = table_->Insert(
          txn, Record({info.id, name, user.value, uint64_t{info.created_at},
                       static_cast<uint64_t>(i), s.type, s.label,
                       s.placeholder, SerializeLayout(s.layout)}));
      if (!rid.ok()) return rid.status();
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  templates_[name] = std::move(info);
  return templates_[name].id;
}

Result<TemplateInfo> TemplateStore::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("no template named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> TemplateStore::TemplateNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, info] : templates_) out.push_back(name);
  return out;
}

Result<DocumentId> TemplateStore::Instantiate(UserId user,
                                              const std::string& name,
                                              const std::string& doc_name) {
  auto info = Get(name);
  if (!info.ok()) return info.status();

  auto doc = text_->CreateDocument(user, doc_name);
  if (!doc.ok()) return doc;
  size_t pos = 0;
  for (const TemplateSection& section : info->sections) {
    std::string body = section.placeholder + "\n";
    auto edit = text_->InsertText(user, *doc, pos, body);
    if (!edit.ok()) return edit.status();
    size_t body_len = body.size();  // placeholders are ASCII by convention
    auto element = docs_->CreateElement(user, *doc, ElementId(),
                                        section.type, section.label, pos,
                                        body_len - 1);
    if (!element.ok()) return element.status();
    for (const auto& [attr, value] : section.layout) {
      auto run = docs_->ApplyLayout(user, *doc, pos, body_len - 1, attr,
                                    value);
      if (!run.ok()) return run.status();
    }
    pos += body_len;
  }
  return doc;
}

}  // namespace tendax

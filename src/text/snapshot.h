#ifndef TENDAX_TEXT_SNAPSHOT_H_
#define TENDAX_TEXT_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/ids.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace tendax {

/// Document-level header as stored in the documents table. Defined here
/// (rather than text_store.h) because every published `CharListSnapshot`
/// embeds the header it was materialized from.
struct DocumentInfo {
  DocumentId id;
  std::string name;
  UserId creator;
  Timestamp created = 0;
  std::string state;       // free-form lifecycle state, e.g. "draft"
  Version version = 0;     // bumped by every committed editing transaction
  uint64_t length = 0;     // live characters
};

/// One character of the version-stamped chain as captured by the MVCC read
/// path: identity, code point, version interval, copy-paste provenance.
/// Author / timestamp / deleted_by metadata stays record-only — lineage
/// reads (`CharAt`, `RangeInfo`, `FullChain`) keep the locked record path.
struct SnapChar {
  uint64_t id = 0;
  uint32_t cp = 0;
  Version inserted = 0;
  Version deleted = 0;  // 0 = live
  uint64_t src_doc = 0;
  uint64_t src_char = 0;
  std::string src_external;
};

/// A slice of the character chain in physical order, tombstones included.
/// Copy-on-write unit: once a segment has been frozen into a snapshot it is
/// never mutated again — writers clone the touched segment instead.
struct SnapSegment {
  std::vector<SnapChar> chars;
  size_t live = 0;  // chars with deleted == 0
};

class SnapshotTracker;

/// An immutable, refcounted view of one document at one committed version.
///
/// Readers acquire one through `TextStore::AcquireSnapshot()` and then read
/// (text, ranges, time travel, copy provenance) with no LockManager
/// acquisition and no per-handle mutex: the snapshot shares segments with
/// the writer-side chain copy-on-write, so it stays valid — and bit-stable —
/// while `PurgeHistory`, cache eviction, or further edits run concurrently.
/// Reclamation is by refcount: the backing segments are freed when the last
/// snapshot (or the writer chain) referencing them drops away, never while a
/// reader still holds them.
class CharListSnapshot {
 public:
  CharListSnapshot(DocumentInfo info, Version purge_floor,
                   std::vector<std::shared_ptr<const SnapSegment>> segments,
                   std::shared_ptr<SnapshotTracker> tracker);
  ~CharListSnapshot();

  CharListSnapshot(const CharListSnapshot&) = delete;
  CharListSnapshot& operator=(const CharListSnapshot&) = delete;

  const DocumentInfo& info() const { return info_; }
  Version version() const { return info_.version; }
  /// Versions strictly below this are unreadable: `PurgeHistory` physically
  /// deleted tombstones that were alive in them. `TextAtVersion` below the
  /// floor returns kFailedPrecondition instead of silently wrong text.
  Version purge_floor() const { return purge_floor_; }
  uint64_t length() const { return info_.length; }
  /// Chain records including tombstones.
  size_t chain_size() const;

  std::string Text() const;
  Result<std::string> TextRange(size_t pos, size_t len) const;
  /// Text as of `version` — kFailedPrecondition below the purge floor.
  Result<std::string> TextAtVersion(Version version) const;
  /// The live character at `pos` (0-based over live characters).
  Result<SnapChar> LiveAt(size_t pos) const;
  /// Live characters [pos, pos+len) in order, with provenance.
  Result<std::vector<SnapChar>> LiveRange(size_t pos, size_t len) const;

 private:
  const DocumentInfo info_;
  const Version purge_floor_;
  const std::vector<std::shared_ptr<const SnapSegment>> segments_;
  const std::shared_ptr<SnapshotTracker> tracker_;
  uint64_t seq_ = 0;  // tracker registration (0 = untracked)
};

using SnapshotRef = std::shared_ptr<const CharListSnapshot>;

/// Bookkeeping for the mvcc.* metric family. Snapshots register on
/// construction and deregister on destruction, so at any instant
///   mvcc.snapshots_published == mvcc.snapshots_reclaimed + live set
/// and the oldest-snapshot-age gauge reports how far behind the slowest
/// reader is. Held by shared_ptr from both the TextStore and every
/// snapshot, so a snapshot outliving its store still deregisters safely.
class SnapshotTracker {
 public:
  SnapshotTracker(std::shared_ptr<Clock> clock,
                  std::shared_ptr<MetricsRegistry> metrics);

  /// Registers a newly materialized snapshot; returns its tracking seq.
  uint64_t OnPublish() TENDAX_EXCLUDES(mu_);
  /// Deregisters a destroyed snapshot.
  void OnReclaim(uint64_t seq) TENDAX_EXCLUDES(mu_);
  /// Counts one reader acquisition (shared snapshots count per acquire).
  void OnAcquire();

  /// Recomputes mvcc.live_snapshots / mvcc.oldest_snapshot_age_micros;
  /// called on every stats scrape so kStats folds the gauges in.
  void RefreshGauges() TENDAX_EXCLUDES(mu_);

  uint64_t live() const TENDAX_EXCLUDES(mu_);

 private:
  const std::shared_ptr<Clock> clock_;
  const std::shared_ptr<MetricsRegistry> metrics_;
  Counter* published_ = nullptr;
  Counter* acquired_ = nullptr;
  Counter* reclaimed_ = nullptr;
  Gauge* live_gauge_ = nullptr;
  Gauge* oldest_age_ = nullptr;

  mutable Mutex mu_{"mvcc.tracker", lockorder::kRankLeaf};
  uint64_t next_seq_ TENDAX_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, Timestamp> live_ TENDAX_GUARDED_BY(mu_);
};

/// The writer-side character chain: physical order including tombstones,
/// stored as copy-on-write segments so that publishing a snapshot is O(#
/// segments) pointer copies and a subsequent edit clones only the touched
/// segment. Not internally synchronized — the TextStore mutates it under
/// the document handle mutex only.
class VersionedCharList {
 public:
  size_t live_size() const { return live_; }
  size_t chain_size() const;
  bool empty() const { return live_ == 0; }

  /// The live character at `pos`; precondition pos < live_size().
  const SnapChar& LiveAt(size_t pos) const;

  void Clear();
  /// Replaces the content with `chain` (physical order, tombstones
  /// included), re-segmenting from scratch.
  void Rebuild(std::vector<SnapChar> chain);
  /// Inserts `run` directly after the live character at live_pos-1 (at the
  /// physical head for live_pos == 0) — mirroring how the record layer
  /// links new characters into the chain.
  void InsertRun(size_t live_pos, const std::vector<SnapChar>& run);
  /// Tombstones the live characters [live_pos, live_pos+len).
  void TombstoneRange(size_t live_pos, size_t len, Version deleted);
  /// Tombstones the live character with `id`; false if not live.
  bool TombstoneById(uint64_t id, Version deleted);
  /// Physically drops tombstones with deleted <= before; returns the count.
  uint64_t PurgeBelow(Version before);

  std::string Text() const;
  /// Caller checks bounds; precondition pos + len <= live_size().
  std::string TextRange(size_t pos, size_t len) const;

  /// Marks every segment frozen and returns them for snapshot publication;
  /// later mutations copy-on-write the touched segment.
  std::vector<std::shared_ptr<const SnapSegment>> Freeze();

 private:
  // Segment sizing: re-segment at kSegTarget, clone-split once a segment
  // grows past 2x. Keeps per-edit clone cost bounded while amortizing the
  // per-segment shared_ptr overhead. Sized small because the clone of one
  // touched segment is the copy-on-write cost every publishing commit
  // pays — BM_InsertCharDurable's publication_overhead_pct watches it.
  static constexpr size_t kSegTarget = 128;

  SnapSegment* Own(size_t idx);
  void SplitIfOversize(size_t idx);
  void DropEmptySegments();

  std::vector<std::shared_ptr<SnapSegment>> segs_;
  std::vector<uint8_t> frozen_;  // parallel to segs_: 1 = shared, clone first
  size_t live_ = 0;
};

}  // namespace tendax

#endif  // TENDAX_TEXT_SNAPSHOT_H_

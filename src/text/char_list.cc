#include "text/char_list.h"

#include "text/utf8.h"
#include "util/logging.h"

namespace tendax {

std::pair<size_t, size_t> CharList::Locate(size_t pos) const {
  TENDAX_CHECK(pos <= size_);
  size_t remaining = pos;
  for (size_t b = 0; b < blocks_.size(); ++b) {
    size_t n = blocks_[b].chars.size();
    if (remaining < n) return {b, remaining};
    // pos == size() lands at the end of the last block.
    if (remaining == n && b + 1 == blocks_.size()) return {b, n};
    remaining -= n;
  }
  return {0, 0};  // empty list
}

const CachedChar& CharList::At(size_t pos) const {
  TENDAX_CHECK(pos < size_);
  auto [b, off] = Locate(pos);
  return blocks_[b].chars[off];
}

void CharList::Insert(size_t pos, CachedChar c) {
  if (blocks_.empty()) blocks_.emplace_back();
  auto [b, off] = Locate(pos);
  auto& chars = blocks_[b].chars;
  chars.insert(chars.begin() + off, c);
  ++size_;
  SplitIfNeeded(b);
}

void CharList::InsertRun(size_t pos, const std::vector<CachedChar>& run) {
  if (run.empty()) return;
  if (blocks_.empty()) blocks_.emplace_back();
  auto [b, off] = Locate(pos);
  auto& chars = blocks_[b].chars;
  chars.insert(chars.begin() + off, run.begin(), run.end());
  size_ += run.size();
  SplitIfNeeded(b);
}

void CharList::Erase(size_t pos) { EraseRange(pos, 1); }

void CharList::EraseRange(size_t pos, size_t len) {
  TENDAX_CHECK(pos + len <= size_);
  size_t remaining = len;
  while (remaining > 0) {
    auto [b, off] = Locate(pos);
    auto& chars = blocks_[b].chars;
    size_t take = std::min(remaining, chars.size() - off);
    chars.erase(chars.begin() + off, chars.begin() + off + take);
    size_ -= take;
    remaining -= take;
    if (chars.empty() && blocks_.size() > 1) {
      blocks_.erase(blocks_.begin() + b);
    }
  }
}

std::optional<size_t> CharList::FindById(uint64_t id) const {
  size_t base = 0;
  for (const Block& block : blocks_) {
    for (size_t i = 0; i < block.chars.size(); ++i) {
      if (block.chars[i].id == id) return base + i;
    }
    base += block.chars.size();
  }
  return std::nullopt;
}

std::string CharList::TextRange(size_t pos, size_t len) const {
  TENDAX_CHECK(pos + len <= size_);
  std::string out;
  out.reserve(len);
  auto [b, off] = Locate(pos);
  size_t remaining = len;
  while (remaining > 0 && b < blocks_.size()) {
    const auto& chars = blocks_[b].chars;
    size_t take = std::min(remaining, chars.size() - off);
    for (size_t i = off; i < off + take; ++i) {
      AppendUtf8(&out, chars[i].cp);
    }
    remaining -= take;
    off = 0;
    ++b;
  }
  return out;
}

std::vector<CachedChar> CharList::Snapshot() const {
  std::vector<CachedChar> out;
  out.reserve(size_);
  for (const Block& block : blocks_) {
    out.insert(out.end(), block.chars.begin(), block.chars.end());
  }
  return out;
}

void CharList::Clear() {
  blocks_.clear();
  size_ = 0;
}

void CharList::SplitIfNeeded(size_t block_idx) {
  auto& chars = blocks_[block_idx].chars;
  while (chars.size() > 2 * kBlockSize) {
    Block right;
    right.chars.assign(chars.begin() + kBlockSize, chars.end());
    chars.resize(kBlockSize);
    blocks_.insert(blocks_.begin() + block_idx + 1, std::move(right));
    block_idx += 1;
    // `chars` reference is invalidated by the insert; re-fetch the block we
    // just created in case it too is oversized (large InsertRun).
    return SplitIfNeeded(block_idx);
  }
}

}  // namespace tendax

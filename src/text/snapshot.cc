#include "text/snapshot.h"

#include <algorithm>
#include <cassert>

#include "text/utf8.h"

namespace tendax {

// ---------------------------------------------------------------------------
// CharListSnapshot

CharListSnapshot::CharListSnapshot(
    DocumentInfo info, Version purge_floor,
    std::vector<std::shared_ptr<const SnapSegment>> segments,
    std::shared_ptr<SnapshotTracker> tracker)
    : info_(std::move(info)),
      purge_floor_(purge_floor),
      segments_(std::move(segments)),
      tracker_(std::move(tracker)) {
  if (tracker_) seq_ = tracker_->OnPublish();
}

CharListSnapshot::~CharListSnapshot() {
  if (tracker_) tracker_->OnReclaim(seq_);
}

size_t CharListSnapshot::chain_size() const {
  size_t n = 0;
  for (const auto& seg : segments_) n += seg->chars.size();
  return n;
}

std::string CharListSnapshot::Text() const {
  std::string out;
  out.reserve(info_.length);
  for (const auto& seg : segments_) {
    for (const SnapChar& c : seg->chars) {
      if (c.deleted == 0) AppendUtf8(&out, c.cp);
    }
  }
  return out;
}

Result<std::string> CharListSnapshot::TextRange(size_t pos, size_t len) const {
  if (pos + len > info_.length) {
    return Status::OutOfRange("text range beyond document length");
  }
  std::string out;
  out.reserve(len);
  size_t skip = pos;
  size_t remaining = len;
  for (const auto& seg : segments_) {
    if (remaining == 0) break;
    if (skip >= seg->live) {
      skip -= seg->live;
      continue;
    }
    for (const SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      if (remaining == 0) break;
      AppendUtf8(&out, c.cp);
      --remaining;
    }
  }
  return out;
}

Result<std::string> CharListSnapshot::TextAtVersion(Version version) const {
  if (version < purge_floor_) {
    return Status::FailedPrecondition(
        "version " + std::to_string(version) +
        " predates the purge floor " + std::to_string(purge_floor_) +
        " of document " + info_.id.ToString() +
        ": its tombstones were physically purged");
  }
  std::string out;
  for (const auto& seg : segments_) {
    for (const SnapChar& c : seg->chars) {
      if (c.inserted <= version && (c.deleted == 0 || c.deleted > version)) {
        AppendUtf8(&out, c.cp);
      }
    }
  }
  return out;
}

Result<SnapChar> CharListSnapshot::LiveAt(size_t pos) const {
  if (pos >= info_.length) {
    return Status::OutOfRange("position beyond document length");
  }
  size_t skip = pos;
  for (const auto& seg : segments_) {
    if (skip >= seg->live) {
      skip -= seg->live;
      continue;
    }
    for (const SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip == 0) return c;
      --skip;
    }
  }
  return Status::Internal("snapshot live index out of sync");
}

Result<std::vector<SnapChar>> CharListSnapshot::LiveRange(size_t pos,
                                                          size_t len) const {
  if (pos + len > info_.length) {
    return Status::OutOfRange("range beyond document length");
  }
  std::vector<SnapChar> out;
  out.reserve(len);
  size_t skip = pos;
  size_t remaining = len;
  for (const auto& seg : segments_) {
    if (remaining == 0) break;
    for (const SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      if (remaining == 0) break;
      out.push_back(c);
      --remaining;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SnapshotTracker

SnapshotTracker::SnapshotTracker(std::shared_ptr<Clock> clock,
                                 std::shared_ptr<MetricsRegistry> metrics)
    : clock_(std::move(clock)), metrics_(std::move(metrics)) {
  if (metrics_) {
    published_ = metrics_->counter("mvcc.snapshots_published");
    acquired_ = metrics_->counter("mvcc.snapshots_acquired");
    reclaimed_ = metrics_->counter("mvcc.snapshots_reclaimed");
    live_gauge_ = metrics_->gauge("mvcc.live_snapshots");
    oldest_age_ = metrics_->gauge("mvcc.oldest_snapshot_age_micros");
  }
}

uint64_t SnapshotTracker::OnPublish() {
  Timestamp now = clock_ ? clock_->NowMicros() : 0;
  uint64_t seq;
  {
    MutexLock lock(mu_);
    seq = next_seq_++;
    live_[seq] = now;
  }
  MetricAdd(published_);
  return seq;
}

void SnapshotTracker::OnReclaim(uint64_t seq) {
  {
    MutexLock lock(mu_);
    live_.erase(seq);
  }
  MetricAdd(reclaimed_);
}

void SnapshotTracker::OnAcquire() { MetricAdd(acquired_); }

void SnapshotTracker::RefreshGauges() {
  int64_t live_count;
  int64_t oldest_age = 0;
  {
    MutexLock lock(mu_);
    live_count = static_cast<int64_t>(live_.size());
    if (!live_.empty() && clock_) {
      Timestamp now = clock_->NowMicros();
      Timestamp oldest = live_.begin()->second;  // seqs publish in time order
      if (now > oldest) oldest_age = static_cast<int64_t>(now - oldest);
    }
  }
  if (live_gauge_) live_gauge_->Set(live_count);
  if (oldest_age_) oldest_age_->Set(oldest_age);
}

uint64_t SnapshotTracker::live() const {
  MutexLock lock(mu_);
  return live_.size();
}

// ---------------------------------------------------------------------------
// VersionedCharList

size_t VersionedCharList::chain_size() const {
  size_t n = 0;
  for (const auto& seg : segs_) n += seg->chars.size();
  return n;
}

const SnapChar& VersionedCharList::LiveAt(size_t pos) const {
  assert(pos < live_);
  size_t skip = pos;
  for (const auto& seg : segs_) {
    if (skip >= seg->live) {
      skip -= seg->live;
      continue;
    }
    for (const SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip == 0) return c;
      --skip;
    }
  }
  // Unreachable while live counts are consistent; keep the compiler happy.
  static const SnapChar kNone{};
  assert(false && "live index out of sync");
  return kNone;
}

void VersionedCharList::Clear() {
  segs_.clear();
  frozen_.clear();
  live_ = 0;
}

void VersionedCharList::Rebuild(std::vector<SnapChar> chain) {
  Clear();
  for (size_t off = 0; off < chain.size(); off += kSegTarget) {
    size_t end = std::min(off + kSegTarget, chain.size());
    auto seg = std::make_shared<SnapSegment>();
    seg->chars.assign(std::make_move_iterator(chain.begin() + off),
                      std::make_move_iterator(chain.begin() + end));
    for (const SnapChar& c : seg->chars) {
      if (c.deleted == 0) ++seg->live;
    }
    live_ += seg->live;
    segs_.push_back(std::move(seg));
    frozen_.push_back(0);
  }
}

SnapSegment* VersionedCharList::Own(size_t idx) {
  if (frozen_[idx]) {
    segs_[idx] = std::make_shared<SnapSegment>(*segs_[idx]);
    frozen_[idx] = 0;
  }
  return segs_[idx].get();
}

void VersionedCharList::SplitIfOversize(size_t idx) {
  if (segs_[idx]->chars.size() <= 2 * kSegTarget) return;
  SnapSegment* seg = Own(idx);
  std::vector<SnapChar>& v = seg->chars;
  std::vector<std::shared_ptr<SnapSegment>> pieces;
  for (size_t off = 0; off < v.size(); off += kSegTarget) {
    size_t end = std::min(off + kSegTarget, v.size());
    auto piece = std::make_shared<SnapSegment>();
    piece->chars.assign(std::make_move_iterator(v.begin() + off),
                        std::make_move_iterator(v.begin() + end));
    for (const SnapChar& c : piece->chars) {
      if (c.deleted == 0) ++piece->live;
    }
    pieces.push_back(std::move(piece));
  }
  segs_.erase(segs_.begin() + idx);
  frozen_.erase(frozen_.begin() + idx);
  segs_.insert(segs_.begin() + idx, pieces.begin(), pieces.end());
  frozen_.insert(frozen_.begin() + idx, pieces.size(), 0);
}

void VersionedCharList::DropEmptySegments() {
  for (size_t s = segs_.size(); s-- > 0;) {
    if (segs_[s]->chars.empty()) {
      segs_.erase(segs_.begin() + s);
      frozen_.erase(frozen_.begin() + s);
    }
  }
}

void VersionedCharList::InsertRun(size_t live_pos,
                                  const std::vector<SnapChar>& run) {
  assert(live_pos <= live_);
  if (run.empty()) return;
  size_t run_live = 0;
  for (const SnapChar& c : run) {
    if (c.deleted == 0) ++run_live;
  }

  if (segs_.empty()) {
    auto seg = std::make_shared<SnapSegment>();
    seg->chars = run;
    seg->live = run_live;
    segs_.push_back(std::move(seg));
    frozen_.push_back(0);
    live_ += run_live;
    SplitIfOversize(0);
    return;
  }

  // Physical insertion point: directly after the live char at live_pos-1,
  // or the physical head for live_pos == 0 — exactly where the record layer
  // links the new characters.
  size_t seg_idx = 0;
  size_t char_idx = 0;
  if (live_pos > 0) {
    size_t skip = live_pos - 1;  // find the (live_pos-1)-th live char
    bool found = false;
    for (size_t s = 0; s < segs_.size() && !found; ++s) {
      if (skip >= segs_[s]->live) {
        skip -= segs_[s]->live;
        continue;
      }
      const auto& chars = segs_[s]->chars;
      for (size_t i = 0; i < chars.size(); ++i) {
        if (chars[i].deleted != 0) continue;
        if (skip == 0) {
          seg_idx = s;
          char_idx = i + 1;
          found = true;
          break;
        }
        --skip;
      }
    }
    assert(found);
  }

  SnapSegment* seg = Own(seg_idx);
  seg->chars.insert(seg->chars.begin() + char_idx, run.begin(), run.end());
  seg->live += run_live;
  live_ += run_live;
  SplitIfOversize(seg_idx);
}

void VersionedCharList::TombstoneRange(size_t live_pos, size_t len,
                                       Version deleted) {
  assert(live_pos + len <= live_);
  size_t skip = live_pos;
  size_t remaining = len;
  for (size_t s = 0; s < segs_.size() && remaining > 0; ++s) {
    if (skip >= segs_[s]->live) {
      skip -= segs_[s]->live;
      continue;
    }
    SnapSegment* seg = Own(s);
    for (SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      if (remaining == 0) break;
      c.deleted = deleted;
      --seg->live;
      --remaining;
    }
  }
  assert(remaining == 0);
  live_ -= len;
}

bool VersionedCharList::TombstoneById(uint64_t id, Version deleted) {
  for (size_t s = 0; s < segs_.size(); ++s) {
    const auto& chars = segs_[s]->chars;
    for (size_t i = 0; i < chars.size(); ++i) {
      if (chars[i].id == id && chars[i].deleted == 0) {
        SnapSegment* seg = Own(s);
        seg->chars[i].deleted = deleted;
        --seg->live;
        --live_;
        return true;
      }
    }
  }
  return false;
}

uint64_t VersionedCharList::PurgeBelow(Version before) {
  uint64_t purged = 0;
  for (size_t s = 0; s < segs_.size(); ++s) {
    bool any = false;
    for (const SnapChar& c : segs_[s]->chars) {
      if (c.deleted != 0 && c.deleted <= before) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    SnapSegment* seg = Own(s);
    size_t before_n = seg->chars.size();
    std::erase_if(seg->chars, [&](const SnapChar& c) {
      return c.deleted != 0 && c.deleted <= before;
    });
    purged += before_n - seg->chars.size();
  }
  DropEmptySegments();
  return purged;
}

std::string VersionedCharList::Text() const {
  std::string out;
  out.reserve(live_);
  for (const auto& seg : segs_) {
    for (const SnapChar& c : seg->chars) {
      if (c.deleted == 0) AppendUtf8(&out, c.cp);
    }
  }
  return out;
}

std::string VersionedCharList::TextRange(size_t pos, size_t len) const {
  assert(pos + len <= live_);
  std::string out;
  out.reserve(len);
  size_t skip = pos;
  size_t remaining = len;
  for (const auto& seg : segs_) {
    if (remaining == 0) break;
    if (skip >= seg->live) {
      skip -= seg->live;
      continue;
    }
    for (const SnapChar& c : seg->chars) {
      if (c.deleted != 0) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      if (remaining == 0) break;
      AppendUtf8(&out, c.cp);
      --remaining;
    }
  }
  return out;
}

std::vector<std::shared_ptr<const SnapSegment>> VersionedCharList::Freeze() {
  std::fill(frozen_.begin(), frozen_.end(), uint8_t{1});
  return std::vector<std::shared_ptr<const SnapSegment>>(segs_.begin(),
                                                         segs_.end());
}

}  // namespace tendax

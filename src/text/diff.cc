#include "text/diff.h"

#include "text/utf8.h"

namespace tendax {

VersionDiff::VersionDiff(TextStore* text) : text_(text) {}

namespace {

enum class Presence : uint8_t { kNeither, kOnlyFrom, kOnlyTo, kBoth };

Presence Classify(const CharInfo& info, Version from, Version to) {
  auto alive_at = [&](Version v) {
    return info.inserted_version <= v &&
           (info.deleted_version == 0 || info.deleted_version > v);
  };
  bool in_from = alive_at(from);
  bool in_to = alive_at(to);
  if (in_from && in_to) return Presence::kBoth;
  if (in_from) return Presence::kOnlyFrom;
  if (in_to) return Presence::kOnlyTo;
  return Presence::kNeither;
}

}  // namespace

Result<std::vector<DiffHunk>> VersionDiff::Between(DocumentId doc,
                                                   Version from, Version to) {
  if (from > to) {
    return Status::InvalidArgument("diff requires from <= to");
  }
  auto chain = text_->FullChain(doc);
  if (!chain.ok()) return chain.status();

  std::vector<DiffHunk> hunks;
  for (const CharInfo& info : *chain) {
    DiffHunk::Kind kind;
    UserId author;
    switch (Classify(info, from, to)) {
      case Presence::kNeither:
        continue;  // outside both versions (older purge or newer insert)
      case Presence::kBoth:
        kind = DiffHunk::Kind::kEqual;
        break;
      case Presence::kOnlyTo:
        kind = DiffHunk::Kind::kInserted;
        author = info.author;
        break;
      case Presence::kOnlyFrom:
        kind = DiffHunk::Kind::kDeleted;
        author = info.deleted_by;
        break;
    }
    if (!hunks.empty() && hunks.back().kind == kind &&
        hunks.back().author == author) {
      AppendUtf8(&hunks.back().text, info.cp);
      continue;
    }
    DiffHunk hunk;
    hunk.kind = kind;
    hunk.author = author;
    hunk.first_char = info.id;
    AppendUtf8(&hunk.text, info.cp);
    hunks.push_back(std::move(hunk));
  }
  return hunks;
}

Result<std::string> VersionDiff::Render(DocumentId doc, Version from,
                                        Version to) {
  auto hunks = Between(doc, from, to);
  if (!hunks.ok()) return hunks.status();
  std::string out = "diff of " + doc.ToString() + " v" +
                    std::to_string(from) + " -> v" + std::to_string(to) +
                    "\n";
  for (const DiffHunk& hunk : *hunks) {
    const char* prefix = "  ";
    if (hunk.kind == DiffHunk::Kind::kInserted) prefix = "+ ";
    if (hunk.kind == DiffHunk::Kind::kDeleted) prefix = "- ";
    std::string text = hunk.text;
    for (char& c : text) {
      if (c == '\n') c = ' ';
    }
    out += prefix;
    out += text;
    if (hunk.kind != DiffHunk::Kind::kEqual && hunk.author.valid()) {
      out += "   (user " + std::to_string(hunk.author.value) + ")";
    }
    out += "\n";
  }
  return out;
}

Result<std::map<UserId, uint64_t>> VersionDiff::Contributions(DocumentId doc,
                                                              Version from,
                                                              Version to) {
  auto hunks = Between(doc, from, to);
  if (!hunks.ok()) return hunks.status();
  std::map<UserId, uint64_t> out;
  for (const DiffHunk& hunk : *hunks) {
    if (hunk.kind != DiffHunk::Kind::kInserted) continue;
    out[hunk.author] += DecodeUtf8(hunk.text).size();
  }
  return out;
}

}  // namespace tendax

#ifndef TENDAX_TEXT_CHAR_LIST_H_
#define TENDAX_TEXT_CHAR_LIST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.h"

namespace tendax {

/// One live character as cached by an open document: its database identity
/// and its code point (everything else lives in the character's record).
struct CachedChar {
  uint64_t id = 0;   // CharId value
  uint32_t cp = 0;   // Unicode code point
};

/// Order-statistic sequence of live characters for one open document: maps
/// positions to characters in O(#blocks) and supports inserts/erases that
/// only shuffle one small block. This is a cache over the linked character
/// records in the database (rebuilt on open), never the source of truth.
class CharList {
 public:
  /// Target block capacity; blocks split at 2x this size.
  static constexpr size_t kBlockSize = 1024;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Character at `pos` (0-based over live characters). Precondition:
  /// pos < size().
  const CachedChar& At(size_t pos) const;

  /// Inserts `c` so that it ends up at position `pos` (pos <= size()).
  void Insert(size_t pos, CachedChar c);

  /// Inserts a run of characters starting at `pos`.
  void InsertRun(size_t pos, const std::vector<CachedChar>& run);

  /// Removes the character at `pos`.
  void Erase(size_t pos);

  /// Removes `len` characters starting at `pos`.
  void EraseRange(size_t pos, size_t len);

  /// Position of the character with database id `id`, if present. O(n).
  std::optional<size_t> FindById(uint64_t id) const;

  /// Concatenated UTF-8 text of positions [pos, pos+len).
  std::string TextRange(size_t pos, size_t len) const;

  /// Entire document text.
  std::string Text() const { return TextRange(0, size_); }

  /// All characters in order (for tests and workload capture).
  std::vector<CachedChar> Snapshot() const;

  void Clear();

 private:
  struct Block {
    std::vector<CachedChar> chars;
  };

  /// Locates the block containing `pos`; returns block index and offset.
  /// For pos == size(), returns the last block with offset == block size.
  std::pair<size_t, size_t> Locate(size_t pos) const;
  void SplitIfNeeded(size_t block_idx);

  std::vector<Block> blocks_;
  size_t size_ = 0;
};

}  // namespace tendax

#endif  // TENDAX_TEXT_CHAR_LIST_H_

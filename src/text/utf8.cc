#include "text/utf8.h"

namespace tendax {

namespace {
constexpr uint32_t kReplacement = 0xFFFD;
}

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0x10FFFF) {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    AppendUtf8(out, kReplacement);
  }
}

std::string EncodeUtf8(const std::vector<uint32_t>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (uint32_t cp : cps) AppendUtf8(&out, cp);
  return out;
}

std::vector<uint32_t> DecodeUtf8(const std::string& bytes) {
  std::vector<uint32_t> out;
  out.reserve(bytes.size());
  size_t i = 0;
  const size_t n = bytes.size();
  while (i < n) {
    unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    uint32_t cp;
    size_t len;
    if (b0 < 0x80) {
      cp = b0;
      len = 1;
    } else if ((b0 & 0xE0) == 0xC0) {
      cp = b0 & 0x1F;
      len = 2;
    } else if ((b0 & 0xF0) == 0xE0) {
      cp = b0 & 0x0F;
      len = 3;
    } else if ((b0 & 0xF8) == 0xF0) {
      cp = b0 & 0x07;
      len = 4;
    } else {
      out.push_back(kReplacement);
      ++i;
      continue;
    }
    if (i + len > n) {
      out.push_back(kReplacement);
      break;
    }
    bool valid = true;
    for (size_t k = 1; k < len; ++k) {
      unsigned char bk = static_cast<unsigned char>(bytes[i + k]);
      if ((bk & 0xC0) != 0x80) {
        valid = false;
        break;
      }
      cp = (cp << 6) | (bk & 0x3F);
    }
    if (!valid || (len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10FFFF) {
      out.push_back(kReplacement);
      ++i;
      continue;
    }
    out.push_back(cp);
    i += len;
  }
  return out;
}

}  // namespace tendax

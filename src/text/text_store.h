#ifndef TENDAX_TEXT_TEXT_STORE_H_
#define TENDAX_TEXT_TEXT_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "text/snapshot.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Full metadata of one stored character — the paper's character-level
/// "creation process" metadata (Sec. 2): author, roles (via author), time,
/// copy-paste reference, version interval.
struct CharInfo {
  CharId id;
  DocumentId doc;
  uint32_t cp = 0;
  UserId author;
  Timestamp created = 0;
  Version inserted_version = 0;
  Version deleted_version = 0;  // 0 = live
  UserId deleted_by;
  DocumentId src_doc;           // copy-paste provenance (invalid = typed)
  CharId src_char;
  std::string src_external;     // non-TeNDaX source label, if any
};

/// Outcome of one editing transaction.
struct EditResult {
  Version version = 0;              // document version the edit created
  std::vector<CharId> chars;        // affected characters, in order
};

/// One character captured by Copy, carrying the provenance that Paste will
/// record: the source character is the *original* (transitive source if the
/// copied character was itself pasted), per the paper's data-lineage design.
struct PasteChar {
  uint32_t cp = 0;
  DocumentId src_doc;
  CharId src_char;
  std::string src_external;
};

/// TeNDaX's Text Native Database eXtension: text stored as one record per
/// character, doubly linked inside the database; every edit operation runs
/// as a real-time database transaction (insert/delete/copy/paste each
/// commit before they are visible anywhere).
///
/// Characters are tombstoned, never physically removed, which yields
/// time-travel reads (`TextAtVersion`) and cheap global undo. Per-document
/// order is cached in memory for open documents (a copy-on-write
/// `VersionedCharList`) and rebuilt from the linked records at open — the
/// database stays the only source of truth.
///
/// Concurrency: every editing call takes an exclusive transaction-scoped
/// lock on the document, so concurrent edits on one document serialize per
/// keystroke — the paper's database-centric alternative to operational
/// transformation. Reads are MVCC: each committed edit publishes an
/// immutable refcounted `CharListSnapshot` and read-only operations serve
/// from the latest published snapshot with no LockManager acquisition and
/// no handle mutex (see `AcquireSnapshot`), so readers never stall behind
/// a writer waiting on the commit flush.
class TextStore {
 public:
  explicit TextStore(Database* db);

  /// Creates tables/indexes and rebuilds derived state (id counters and the
  /// char-id -> rid index) from storage. Call once after Database::Open.
  Status Init();

  // --- document lifecycle ---

  Result<DocumentId> CreateDocument(UserId user, const std::string& name);
  Result<DocumentInfo> GetDocumentInfo(DocumentId doc);
  Result<DocumentId> FindDocumentByName(const std::string& name);
  std::vector<DocumentId> ListDocuments();
  Status RenameDocument(UserId user, DocumentId doc, const std::string& name);
  Status SetDocumentState(UserId user, DocumentId doc,
                          const std::string& state);

  // --- editing (each call is one committed transaction) ---

  /// Inserts typed text at `pos` (0-based over live characters). A non-empty
  /// `external_source` records provenance from outside TeNDaX (file import,
  /// web paste) on every inserted character.
  Result<EditResult> InsertText(UserId user, DocumentId doc, size_t pos,
                                const std::string& utf8,
                                const std::string& external_source = "");

  /// Captures [pos, pos+len) with provenance for a later Paste. Reads a
  /// published snapshot inside a snapshot-read transaction (no locks); with
  /// snapshots disabled it falls back to a shared document lock.
  Result<std::vector<PasteChar>> Copy(UserId user, DocumentId doc, size_t pos,
                                      size_t len);

  /// Inserts previously copied characters, recording each one's copy-paste
  /// reference.
  Result<EditResult> Paste(UserId user, DocumentId doc, size_t pos,
                           const std::vector<PasteChar>& chars);

  /// Tombstones [pos, pos+len).
  Result<EditResult> DeleteRange(UserId user, DocumentId doc, size_t pos,
                                 size_t len);

  /// Tombstones specific characters (undo support). Characters already
  /// deleted are skipped.
  Result<EditResult> DeleteChars(UserId user, DocumentId doc,
                                 const std::vector<CharId>& ids);

  /// Brings tombstoned characters back to life at their original list
  /// position (undo of a delete).
  Result<EditResult> ResurrectChars(UserId user, DocumentId doc,
                                    const std::vector<CharId>& ids);

  // --- reads (MVCC snapshot path when enabled) ---

  /// The latest published snapshot of `doc`: an immutable view of the last
  /// committed version. The fast path is one atomic shared_ptr load — no
  /// LockManager acquisition, no handle mutex; only a cold cache (first
  /// read after open/eviction) materializes under the handle mutex.
  /// Fails kFailedPrecondition when snapshots are disabled.
  Result<SnapshotRef> AcquireSnapshot(DocumentId doc)
      TENDAX_EXCLUDES(handles_mu_);

  Result<std::string> Text(DocumentId doc);
  Result<std::string> TextRange(DocumentId doc, size_t pos, size_t len);
  /// Reconstructs the text as of `version` from the snapshot chain
  /// (tombstones included). Versions below the document's purge floor —
  /// i.e. versions whose tombstones `PurgeHistory` physically deleted —
  /// fail with kFailedPrecondition instead of returning silently wrong
  /// text.
  Result<std::string> TextAtVersion(DocumentId doc, Version version);
  Result<uint64_t> Length(DocumentId doc);
  Result<Version> CurrentVersion(DocumentId doc);
  Result<CharInfo> CharAt(DocumentId doc, size_t pos);
  Result<CharInfo> GetChar(DocumentId doc, CharId id);
  /// Character metadata for [pos, pos+len) — feeds lineage and mining.
  Result<std::vector<CharInfo>> RangeInfo(DocumentId doc, size_t pos,
                                          size_t len);

  /// Every character record of the document in chain order, *including*
  /// tombstones — the raw material for version diffs and history purging.
  Result<std::vector<CharInfo>> FullChain(DocumentId doc);

  /// Physically deletes tombstones whose deletion version is <= `before`,
  /// unlinking them from the chain in one transaction. This irreversibly
  /// truncates history: the document's purge floor rises to the highest
  /// deletion version purged, `TextAtVersion` below the floor fails typed,
  /// and undo of the covered deletes becomes impossible. Snapshots already
  /// held by readers are untouched (copy-on-write) and keep reading their
  /// pre-purge history. Returns the number of records purged (the
  /// storage-reclamation ablation of DESIGN.md).
  Result<uint64_t> PurgeHistory(UserId user, DocumentId doc, Version before);

  /// Drops the in-memory cache for `doc` (it reloads on next access).
  void InvalidateHandle(DocumentId doc) TENDAX_EXCLUDES(handles_mu_);

  /// Cache eviction: drops the handle *and* its published snapshot.
  /// Readers still holding a `SnapshotRef` keep it alive by refcount; the
  /// next read reloads from storage. Returns false if nothing was cached.
  bool EvictDocument(DocumentId doc) TENDAX_EXCLUDES(handles_mu_);

  /// Toggles the MVCC read path (default on). Disabling routes every read
  /// back through the legacy handle-mutex path and Copy back to a shared
  /// document lock — the ablation baseline for bench_mvcc. Toggling clears
  /// published snapshots so a re-enable never serves stale state.
  void SetSnapshotsEnabled(bool on) TENDAX_EXCLUDES(handles_mu_);
  bool snapshots_enabled() const {
    return snapshots_enabled_.load(std::memory_order_relaxed);
  }

  /// Recomputes mvcc.live_snapshots / mvcc.oldest_snapshot_age_micros;
  /// the stats scrape calls this so kStats folds the gauges in.
  void RefreshMvccGauges();
  /// The reclamation tracker (test/introspection hook; never null).
  const std::shared_ptr<SnapshotTracker>& snapshot_tracker() const {
    return tracker_;
  }

  Database* db() { return db_; }

 private:
  struct DocHandle {
    // Outer lock of the edit path (rank kRankDocument): held across the
    // whole editing transaction — heap tables, indexes, txn manager, WAL
    // all rank higher. Instances are peers; cross-document nesting (e.g. a
    // paste reading its copy source) generates no lock-order edge.
    Mutex mu{"textstore.doc", lockorder::kRankDocument};
    bool loaded TENDAX_GUARDED_BY(mu) = false;
    RecordId doc_rid TENDAX_GUARDED_BY(mu);
    DocumentId id TENDAX_GUARDED_BY(mu);
    std::string name TENDAX_GUARDED_BY(mu);
    UserId creator TENDAX_GUARDED_BY(mu);
    Timestamp created TENDAX_GUARDED_BY(mu) = 0;
    std::string state TENDAX_GUARDED_BY(mu);
    Version version TENDAX_GUARDED_BY(mu) = 0;
    // Versions strictly below this are unreadable (purged history);
    // persisted in the documents table, raised only by PurgeHistory.
    Version purge_floor TENDAX_GUARDED_BY(mu) = 0;
    // head/tail: physical first/last char id (may be tombstones).
    uint64_t head TENDAX_GUARDED_BY(mu) = 0;
    uint64_t tail TENDAX_GUARDED_BY(mu) = 0;
    // Full chain including tombstones, copy-on-write with snapshots.
    VersionedCharList chain TENDAX_GUARDED_BY(mu);
    std::unordered_map<uint64_t, RecordId> char_rids
        TENDAX_GUARDED_BY(mu);  // all chars
    // The MVCC publication slot. The slot has its own leaf mutex so the
    // read fast path copies the shared_ptr without touching `mu` (or any
    // LockManager state) — the critical section is a refcount bump, never
    // materialization. Not std::atomic<shared_ptr>: libstdc++ implements
    // that with an untagged lock-bit protocol TSAN cannot model, and the
    // race checks in `ctest -L mvcc` under -fsanitize=thread are part of
    // this subsystem's contract. Stores (commit publication, cold
    // materialization, eviction) are version-monotone — an
    // early-lock-released commit that finishes its flush late never
    // overwrites a newer snapshot.
    Mutex snapshot_mu{"textstore.snapshot", lockorder::kRankLeaf};
    SnapshotRef snapshot TENDAX_GUARDED_BY(snapshot_mu);
    // Snapshot prepared by an in-flight edit (under `mu`, pre-commit);
    // moved into `snapshot` by the commit listener / post-commit install,
    // discarded on abort via handle invalidation.
    SnapshotRef pending_snapshot TENDAX_GUARDED_BY(mu);
  };

  using EditBody =
      std::function<Status(Transaction*, DocHandle*, EditResult*)>;

  /// Registry lookup only — creates the slot but does not load or lock it.
  std::shared_ptr<DocHandle> HandleSlot(DocumentId doc)
      TENDAX_EXCLUDES(handles_mu_);
  Result<std::shared_ptr<DocHandle>> Handle(DocumentId doc)
      TENDAX_EXCLUDES(handles_mu_);
  Status LoadHandle(DocHandle* handle, DocumentId doc)
      TENDAX_REQUIRES(handle->mu);
  /// Pins an edit's base to the committed document header; caller holds the
  /// document X lock. Eviction racing an in-flight edit can leave two
  /// handle objects for one document, and a commit that went through the
  /// detached one leaves this handle's cache — including `doc_rid`, which
  /// record updates move — behind the stored state. One header read per
  /// edit detects that and reloads.
  Status EnsureFreshBase(DocHandle* handle, DocumentId doc)
      TENDAX_REQUIRES(handle->mu);
  /// Runs `body` inside a transaction holding the document's X lock, with
  /// the handle's mutex held; bumps the document version and emits `event`.
  /// After a successful commit the prepared snapshot is published.
  Result<EditResult> RunEdit(UserId user, DocumentId doc, ChangeKind kind,
                             const EditBody& body);

  /// Materializes an immutable snapshot of the handle's current state
  /// (shares chain segments copy-on-write; cheap).
  SnapshotRef PrepareLockedSnapshot(DocHandle* handle)
      TENDAX_REQUIRES(handle->mu);
  /// Version-monotone store into the publication slot.
  void InstallSnapshot(DocHandle* handle, const SnapshotRef& snap)
      TENDAX_EXCLUDES(handle->mu);
  /// Commit listener: publishes the pending snapshot of every document a
  /// just-committed transaction edited (runs before later-registered
  /// listeners such as the search index, which therefore see fresh
  /// snapshots).
  void OnCommitted(const ChangeBatch& events) TENDAX_EXCLUDES(handles_mu_);

  Result<Record> ReadCharRecord(DocHandle* handle, uint64_t char_id)
      TENDAX_REQUIRES(handle->mu);
  Status UpdateCharRecord(Transaction* txn, DocHandle* handle,
                          uint64_t char_id, const Record& record)
      TENDAX_REQUIRES(handle->mu);
  Status WriteDocRecord(Transaction* txn, DocHandle* handle)
      TENDAX_REQUIRES(handle->mu);
  /// Core insertion: links `chars` after the live character at pos-1.
  Status InsertCharsAt(Transaction* txn, DocHandle* handle, UserId user,
                       size_t pos, const std::vector<PasteChar>& chars,
                       Version new_version, EditResult* result)
      TENDAX_REQUIRES(handle->mu);

  Database* const db_;
  HeapTable* chars_table_ = nullptr;
  HeapTable* docs_table_ = nullptr;
  BPlusTree* char_index_ = nullptr;  // char_id -> rid
  BPlusTree* doc_index_ = nullptr;   // doc_id -> rid

  std::atomic<bool> snapshots_enabled_{true};
  std::shared_ptr<SnapshotTracker> tracker_;
  Counter* m_evictions_ = nullptr;

  // Registry of handles only; always released before a handle's own mu.
  Mutex handles_mu_{"textstore.handles", lockorder::kRankDocument};
  std::unordered_map<uint64_t, std::shared_ptr<DocHandle>> handles_
      TENDAX_GUARDED_BY(handles_mu_);

  std::atomic<uint64_t> next_char_id_{1};
  std::atomic<uint64_t> next_doc_id_{1};
};

}  // namespace tendax

#endif  // TENDAX_TEXT_TEXT_STORE_H_

#include "text/text_store.h"

#include "text/utf8.h"
#include "util/logging.h"

namespace tendax {

namespace {

// Column positions in the characters table.
enum CharCol : size_t {
  kCcId = 0,
  kCcDoc,
  kCcCp,
  kCcPrev,
  kCcNext,
  kCcAuthor,
  kCcCreated,
  kCcInsVer,
  kCcDelVer,
  kCcDeletedBy,
  kCcSrcDoc,
  kCcSrcChar,
  kCcSrcExt,
};

// Column positions in the documents table.
enum DocCol : size_t {
  kDcId = 0,
  kDcName,
  kDcCreator,
  kDcCreated,
  kDcState,
  kDcVersion,
  kDcHead,
  kDcTail,
  kDcLive,
  kDcPurgeFloor,
};

Schema CharsSchema() {
  return Schema({{"char_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"codepoint", ColumnType::kUint64},
                 {"prev", ColumnType::kUint64},
                 {"next", ColumnType::kUint64},
                 {"author", ColumnType::kUint64},
                 {"created_at", ColumnType::kUint64},
                 {"inserted_version", ColumnType::kUint64},
                 {"deleted_version", ColumnType::kUint64},
                 {"deleted_by", ColumnType::kUint64},
                 {"src_doc", ColumnType::kUint64},
                 {"src_char", ColumnType::kUint64},
                 {"src_external", ColumnType::kString}});
}

Schema DocsSchema() {
  return Schema({{"doc_id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"creator", ColumnType::kUint64},
                 {"created_at", ColumnType::kUint64},
                 {"state", ColumnType::kString},
                 {"version", ColumnType::kUint64},
                 {"head", ColumnType::kUint64},
                 {"tail", ColumnType::kUint64},
                 {"live_count", ColumnType::kUint64},
                 {"purge_floor", ColumnType::kUint64}});
}

CharInfo CharInfoFromRecord(const Record& rec) {
  CharInfo info;
  info.id = CharId(rec.GetUint(kCcId));
  info.doc = DocumentId(rec.GetUint(kCcDoc));
  info.cp = static_cast<uint32_t>(rec.GetUint(kCcCp));
  info.author = UserId(rec.GetUint(kCcAuthor));
  info.created = rec.GetUint(kCcCreated);
  info.inserted_version = rec.GetUint(kCcInsVer);
  info.deleted_version = rec.GetUint(kCcDelVer);
  info.deleted_by = UserId(rec.GetUint(kCcDeletedBy));
  info.src_doc = DocumentId(rec.GetUint(kCcSrcDoc));
  info.src_char = CharId(rec.GetUint(kCcSrcChar));
  info.src_external = rec.GetString(kCcSrcExt);
  return info;
}

Status PurgeFloorError(DocumentId doc, Version version, Version floor) {
  return Status::FailedPrecondition(
      "version " + std::to_string(version) + " predates the purge floor " +
      std::to_string(floor) + " of document " + doc.ToString() +
      ": its tombstones were physically purged");
}

}  // namespace

TextStore::TextStore(Database* db)
    : db_(db),
      tracker_(std::make_shared<SnapshotTracker>(db->clock_shared(),
                                                 db->metrics_shared())) {
  if (db_->metrics() != nullptr) {
    m_evictions_ = db_->metrics()->counter("mvcc.evictions");
  }
}

Status TextStore::Init() {
  auto chars = db_->EnsureTable("tendax_chars", CharsSchema());
  if (!chars.ok()) return chars.status();
  chars_table_ = *chars;
  auto docs = db_->EnsureTable("tendax_docs", DocsSchema());
  if (!docs.ok()) return docs.status();
  docs_table_ = *docs;

  auto char_index = db_->CreateIndex("tendax_char_rid");
  if (!char_index.ok()) return char_index.status();
  char_index_ = *char_index;
  auto doc_index = db_->CreateIndex("tendax_doc_rid");
  if (!doc_index.ok()) return doc_index.status();
  doc_index_ = *doc_index;

  // Rebuild derived state (indexes are not persisted).
  uint64_t max_char = 0, max_doc = 0;
  Status index_status = Status::OK();
  TENDAX_RETURN_IF_ERROR(
      chars_table_->Scan([&](RecordId rid, const Record& rec) {
        uint64_t id = rec.GetUint(kCcId);
        max_char = std::max(max_char, id);
        Status st = char_index_->Insert(id, rid.Pack());
        if (!st.ok()) {
          index_status = st;
          return false;
        }
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(index_status);
  TENDAX_RETURN_IF_ERROR(
      docs_table_->Scan([&](RecordId rid, const Record& rec) {
        uint64_t id = rec.GetUint(kDcId);
        max_doc = std::max(max_doc, id);
        Status st = doc_index_->Insert(id, rid.Pack());
        if (!st.ok()) {
          index_status = st;
          return false;
        }
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(index_status);
  next_char_id_ = max_char + 1;
  next_doc_id_ = max_doc + 1;

  // Snapshot publication rides the commit: this listener runs before any
  // listener registered later (sessions, search), so those observe the
  // fresh snapshot of every document the transaction edited.
  db_->txns()->AddCommitListener(
      [this](TxnId, UserId, const ChangeBatch& events) {
        OnCommitted(events);
      });
  return Status::OK();
}

Result<DocumentId> TextStore::CreateDocument(UserId user,
                                             const std::string& name) {
  DocumentId doc(next_doc_id_.fetch_add(1));
  Timestamp now = db_->clock()->NowMicros();
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
        LockMode::kX));
    Record rec({doc.value, name, user.value, uint64_t{now},
                std::string("draft"), uint64_t{0}, uint64_t{0}, uint64_t{0},
                uint64_t{0}, uint64_t{0}});
    auto rid = docs_table_->Insert(txn, rec);
    if (!rid.ok()) return rid.status();
    TENDAX_RETURN_IF_ERROR(doc_index_->Insert(doc.value, rid->Pack()));
    {
      BPlusTree* index = doc_index_;
      uint64_t id = doc.value, packed = rid->Pack();
      txn->AddRollbackAction(
          [index, id, packed] { (void)index->Delete(id, packed); });
    }
    ChangeEvent ev;
    ev.kind = ChangeKind::kDocumentCreated;
    ev.doc = doc;
    ev.user = user;
    ev.at = now;
    ev.detail = name;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  return doc;
}

std::shared_ptr<TextStore::DocHandle> TextStore::HandleSlot(DocumentId doc) {
  MutexLock lock(handles_mu_);
  auto& slot = handles_[doc.value];
  if (!slot) slot = std::make_shared<DocHandle>();
  return slot;
}

Result<std::shared_ptr<TextStore::DocHandle>> TextStore::Handle(
    DocumentId doc) {
  std::shared_ptr<DocHandle> handle = HandleSlot(doc);
  MutexLock lock(handle->mu);
  if (!handle->loaded) {
    TENDAX_RETURN_IF_ERROR(LoadHandle(handle.get(), doc));
  }
  return handle;
}

Status TextStore::LoadHandle(DocHandle* handle, DocumentId doc) {
  auto rid_packed = doc_index_->GetFirst(doc.value);
  if (!rid_packed.ok()) {
    return Status::NotFound("document " + doc.ToString() + " does not exist");
  }
  RecordId doc_rid = RecordId::Unpack(*rid_packed);
  auto rec = docs_table_->Get(doc_rid);
  if (!rec.ok()) return rec.status();

  handle->doc_rid = doc_rid;
  handle->id = doc;
  handle->name = rec->GetString(kDcName);
  handle->creator = UserId(rec->GetUint(kDcCreator));
  handle->created = rec->GetUint(kDcCreated);
  handle->state = rec->GetString(kDcState);
  handle->version = rec->GetUint(kDcVersion);
  handle->purge_floor = rec->GetUint(kDcPurgeFloor);
  handle->head = rec->GetUint(kDcHead);
  handle->tail = rec->GetUint(kDcTail);
  handle->chain.Clear();
  handle->char_rids.clear();

  // Walk the linked character records (including tombstones) to rebuild the
  // in-memory chain cache.
  std::vector<SnapChar> chain;
  uint64_t current = handle->head;
  while (current != 0) {
    auto packed = char_index_->GetFirst(current);
    if (!packed.ok()) {
      return Status::Corruption("char chain references unknown char " +
                                std::to_string(current));
    }
    RecordId rid = RecordId::Unpack(*packed);
    auto crec = chars_table_->Get(rid);
    if (!crec.ok()) return crec.status();
    handle->char_rids[current] = rid;
    SnapChar sc;
    sc.id = current;
    sc.cp = static_cast<uint32_t>(crec->GetUint(kCcCp));
    sc.inserted = crec->GetUint(kCcInsVer);
    sc.deleted = crec->GetUint(kCcDelVer);
    sc.src_doc = crec->GetUint(kCcSrcDoc);
    sc.src_char = crec->GetUint(kCcSrcChar);
    sc.src_external = crec->GetString(kCcSrcExt);
    chain.push_back(std::move(sc));
    current = crec->GetUint(kCcNext);
  }
  handle->chain.Rebuild(std::move(chain));
  handle->loaded = true;
  return Status::OK();
}

Status TextStore::EnsureFreshBase(DocHandle* handle, DocumentId doc) {
  auto rid_packed = doc_index_->GetFirst(doc.value);
  if (!rid_packed.ok()) {
    return Status::NotFound("document " + doc.ToString() + " does not exist");
  }
  RecordId doc_rid = RecordId::Unpack(*rid_packed);
  auto rec = docs_table_->Get(doc_rid);
  if (!rec.ok()) return rec.status();
  if (handle->loaded && handle->doc_rid == doc_rid &&
      handle->version == rec->GetUint(kDcVersion)) {
    return Status::OK();
  }
  return LoadHandle(handle, doc);
}

void TextStore::InvalidateHandle(DocumentId doc) {
  MutexLock lock(handles_mu_);
  handles_.erase(doc.value);
}

bool TextStore::EvictDocument(DocumentId doc) {
  std::shared_ptr<DocHandle> handle;
  {
    MutexLock lock(handles_mu_);
    auto it = handles_.find(doc.value);
    if (it == handles_.end()) return false;
    handle = std::move(it->second);
    handles_.erase(it);
  }
  {
    MutexLock lock(handle->mu);
    handle->loaded = false;
    handle->pending_snapshot = nullptr;
    // Readers that already acquired the snapshot keep it alive by
    // refcount; this only drops the store's own reference.
    {
      MutexLock slot(handle->snapshot_mu);
      handle->snapshot = nullptr;
    }
    handle->chain.Clear();
    handle->char_rids.clear();
  }
  MetricAdd(m_evictions_);
  return true;
}

void TextStore::SetSnapshotsEnabled(bool on) {
  bool was = snapshots_enabled_.exchange(on, std::memory_order_relaxed);
  if (was == on) return;
  // Drop published state across the toggle so a re-enable can never serve
  // a snapshot that missed edits made while the path was disabled.
  std::vector<std::shared_ptr<DocHandle>> all;
  {
    MutexLock lock(handles_mu_);
    all.reserve(handles_.size());
    for (auto& [id, handle] : handles_) all.push_back(handle);
  }
  for (auto& handle : all) {
    MutexLock lock(handle->mu);
    handle->pending_snapshot = nullptr;
    MutexLock slot(handle->snapshot_mu);
    handle->snapshot = nullptr;
  }
}

void TextStore::RefreshMvccGauges() { tracker_->RefreshGauges(); }

SnapshotRef TextStore::PrepareLockedSnapshot(DocHandle* handle) {
  DocumentInfo info;
  info.id = handle->id;
  info.name = handle->name;
  info.creator = handle->creator;
  info.created = handle->created;
  info.state = handle->state;
  info.version = handle->version;
  info.length = handle->chain.live_size();
  return std::make_shared<CharListSnapshot>(
      std::move(info), handle->purge_floor, handle->chain.Freeze(), tracker_);
}

void TextStore::InstallSnapshot(DocHandle* handle, const SnapshotRef& snap) {
  MutexLock lock(handle->mu);
  {
    MutexLock slot(handle->snapshot_mu);
    if (handle->snapshot == nullptr ||
        handle->snapshot->version() < snap->version()) {
      handle->snapshot = snap;
    }
  }
  if (handle->pending_snapshot == snap) handle->pending_snapshot = nullptr;
}

void TextStore::OnCommitted(const ChangeBatch& events) {
  if (!snapshots_enabled_.load(std::memory_order_relaxed)) return;
  for (const ChangeEvent& ev : events) {
    if (!ev.doc.valid() || ev.version == 0) continue;
    std::shared_ptr<DocHandle> handle;
    {
      MutexLock lock(handles_mu_);
      auto it = handles_.find(ev.doc.value);
      if (it == handles_.end()) continue;
      handle = it->second;
    }
    MutexLock lock(handle->mu);
    if (handle->pending_snapshot == nullptr ||
        handle->pending_snapshot->version() != ev.version) {
      // No matching pending edit: the commit went through a detached
      // handle object (eviction raced the edit). Drop whatever this —
      // the current — handle has cached so the next read or edit
      // re-materializes the committed state instead of serving a base
      // the commit already superseded.
      if (handle->loaded && handle->version < ev.version) {
        handle->loaded = false;
      }
      MutexLock slot(handle->snapshot_mu);
      if (handle->snapshot != nullptr &&
          handle->snapshot->version() < ev.version) {
        handle->snapshot = nullptr;
      }
      continue;
    }
    {
      MutexLock slot(handle->snapshot_mu);
      if (handle->snapshot == nullptr ||
          handle->snapshot->version() < ev.version) {
        handle->snapshot = handle->pending_snapshot;
      }
    }
    handle->pending_snapshot = nullptr;
  }
}

Result<SnapshotRef> TextStore::AcquireSnapshot(DocumentId doc) {
  if (!snapshots_enabled_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("mvcc snapshots are disabled");
  }
  std::shared_ptr<DocHandle> handle = HandleSlot(doc);
  SnapshotRef snap;
  {
    // Fast path: a refcount bump under the leaf slot mutex — no
    // LockManager, no handle mutex, no materialization.
    MutexLock slot(handle->snapshot_mu);
    snap = handle->snapshot;
  }
  if (snap == nullptr) {
    // Cold cache (first read after open / invalidation / eviction):
    // materialize under a shared document lock, once. The S lock is what
    // makes the rebuild read *committed* state: a writer applies its char
    // records before its durable commit releases the X lock, so a lock-free
    // reload here could capture a chain newer than the document header it
    // came with (or worse, a state that later aborts). This is the one
    // place the snapshot path touches the LockManager; every subsequent
    // read hits the published slot above.
    Status st = db_->txns()->RunInTxn(
        UserId(0), [&](Transaction* txn) -> Status {
          TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
              txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
              LockMode::kS));
          MutexLock lock(handle->mu);
          if (!handle->loaded) {
            TENDAX_RETURN_IF_ERROR(LoadHandle(handle.get(), doc));
          }
          MutexLock slot(handle->snapshot_mu);
          if (handle->snapshot == nullptr) {
            handle->snapshot = PrepareLockedSnapshot(handle.get());
          }
          snap = handle->snapshot;
          return Status::OK();
        });
    if (!st.ok()) return st;
  }
  tracker_->OnAcquire();
  return snap;
}

Result<Record> TextStore::ReadCharRecord(DocHandle* handle,
                                         uint64_t char_id) {
  auto it = handle->char_rids.find(char_id);
  if (it == handle->char_rids.end()) {
    return Status::NotFound("char " + std::to_string(char_id) +
                            " not in document");
  }
  return chars_table_->Get(it->second);
}

Status TextStore::UpdateCharRecord(Transaction* txn, DocHandle* handle,
                                   uint64_t char_id, const Record& record) {
  auto it = handle->char_rids.find(char_id);
  if (it == handle->char_rids.end()) {
    return Status::NotFound("char " + std::to_string(char_id) +
                            " not in document");
  }
  RecordId old_rid = it->second;
  auto new_rid = chars_table_->Update(txn, old_rid, record);
  if (!new_rid.ok()) return new_rid.status();
  if (new_rid->Pack() != old_rid.Pack()) {
    it->second = *new_rid;
    TENDAX_RETURN_IF_ERROR(char_index_->Delete(char_id, old_rid.Pack()));
    TENDAX_RETURN_IF_ERROR(char_index_->Insert(char_id, new_rid->Pack()));
    BPlusTree* index = char_index_;
    uint64_t moved_to = new_rid->Pack(), moved_from = old_rid.Pack();
    txn->AddRollbackAction([index, char_id, moved_to, moved_from] {
      (void)index->Delete(char_id, moved_to);
      (void)index->Insert(char_id, moved_from);
    });
  }
  return Status::OK();
}

Status TextStore::WriteDocRecord(Transaction* txn, DocHandle* handle) {
  Record rec({handle->id.value, handle->name, handle->creator.value,
              uint64_t{handle->created}, handle->state,
              uint64_t{handle->version}, uint64_t{handle->head},
              uint64_t{handle->tail}, uint64_t{handle->chain.live_size()},
              uint64_t{handle->purge_floor}});
  auto new_rid = docs_table_->Update(txn, handle->doc_rid, rec);
  if (!new_rid.ok()) return new_rid.status();
  if (new_rid->Pack() != handle->doc_rid.Pack()) {
    uint64_t moved_from = handle->doc_rid.Pack(), moved_to = new_rid->Pack();
    TENDAX_RETURN_IF_ERROR(doc_index_->Delete(handle->id.value, moved_from));
    TENDAX_RETURN_IF_ERROR(doc_index_->Insert(handle->id.value, moved_to));
    handle->doc_rid = *new_rid;
    BPlusTree* index = doc_index_;
    uint64_t doc_id = handle->id.value;
    txn->AddRollbackAction([index, doc_id, moved_to, moved_from] {
      (void)index->Delete(doc_id, moved_to);
      (void)index->Insert(doc_id, moved_from);
    });
  }
  return Status::OK();
}

Result<EditResult> TextStore::RunEdit(UserId user, DocumentId doc,
                                      ChangeKind kind, const EditBody& body) {
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();

  EditResult result;
  bool cache_mutated = false;
  SnapshotRef prepared;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    prepared = nullptr;
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
        LockMode::kX));
    MutexLock lock(h->mu);
    TENDAX_RETURN_IF_ERROR(EnsureFreshBase(h, doc));
    result = EditResult{};
    Version new_version = h->version + 1;
    result.version = new_version;
    cache_mutated = true;  // the body may mutate the cache at any point
    Status body_status = body(txn, h, &result);
    if (!body_status.ok()) {
      // The DB side is rolled back by the abort; the cache may have been
      // mutated by the body — drop it so it reloads from the database.
      h->loaded = false;
      return body_status;
    }
    h->version = new_version;
    TENDAX_RETURN_IF_ERROR(WriteDocRecord(txn, h));

    ChangeEvent ev;
    ev.kind = kind;
    ev.doc = doc;
    ev.user = user;
    ev.version = new_version;
    ev.at = db_->clock()->NowMicros();
    if (!result.chars.empty()) ev.anchor = result.chars.front();
    ev.count = result.chars.size();
    txn->AddEvent(ev);

    // Prepare — but do not publish — the post-edit snapshot. The commit
    // listener installs it the instant the transaction durably commits;
    // an abort discards it with the invalidated handle.
    if (snapshots_enabled_.load(std::memory_order_relaxed)) {
      prepared = PrepareLockedSnapshot(h);
      h->pending_snapshot = prepared;
    }
    return Status::OK();
  });
  if (!st.ok()) {
    if (cache_mutated) InvalidateHandle(doc);
    return st;
  }
  // Belt and braces: the commit listener already published `prepared` in
  // the common case; this covers commits whose event was not matched (the
  // store is monotone, so a double install is a no-op).
  if (prepared != nullptr) InstallSnapshot(h, prepared);
  return result;
}

Status TextStore::InsertCharsAt(Transaction* txn, DocHandle* handle,
                                UserId user, size_t pos,
                                const std::vector<PasteChar>& chars,
                                Version new_version, EditResult* result) {
  if (pos > handle->chain.live_size()) {
    return Status::OutOfRange("insert position " + std::to_string(pos) +
                              " beyond document length " +
                              std::to_string(handle->chain.live_size()));
  }
  if (chars.empty()) return Status::OK();
  const Timestamp now = db_->clock()->NowMicros();

  // Physical neighbors: insert directly after the live char at pos-1 (or at
  // the physical head for pos == 0).
  uint64_t left_id = pos > 0 ? handle->chain.LiveAt(pos - 1).id : 0;
  uint64_t right_id;
  Record left_rec;
  if (left_id != 0) {
    auto rec = ReadCharRecord(handle, left_id);
    if (!rec.ok()) return rec.status();
    left_rec = *rec;
    right_id = left_rec.GetUint(kCcNext);
  } else {
    right_id = handle->head;
  }

  // Allocate ids and insert the new char records, chained together.
  std::vector<uint64_t> ids(chars.size());
  for (size_t i = 0; i < chars.size(); ++i) {
    ids[i] = next_char_id_.fetch_add(1);
  }
  std::vector<SnapChar> run;
  run.reserve(chars.size());
  for (size_t i = 0; i < chars.size(); ++i) {
    uint64_t prev = i == 0 ? left_id : ids[i - 1];
    uint64_t next = i + 1 < chars.size() ? ids[i + 1] : right_id;
    Record rec({ids[i], handle->id.value, uint64_t{chars[i].cp}, prev, next,
                user.value, uint64_t{now}, uint64_t{new_version}, uint64_t{0},
                uint64_t{0}, chars[i].src_doc.value, chars[i].src_char.value,
                chars[i].src_external});
    auto rid = chars_table_->Insert(txn, rec);
    if (!rid.ok()) return rid.status();
    handle->char_rids[ids[i]] = *rid;
    TENDAX_RETURN_IF_ERROR(char_index_->Insert(ids[i], rid->Pack()));
    {
      BPlusTree* index = char_index_;
      uint64_t id = ids[i], packed = rid->Pack();
      txn->AddRollbackAction(
          [index, id, packed] { (void)index->Delete(id, packed); });
    }
    SnapChar sc;
    sc.id = ids[i];
    sc.cp = chars[i].cp;
    sc.inserted = new_version;
    sc.src_doc = chars[i].src_doc.value;
    sc.src_char = chars[i].src_char.value;
    sc.src_external = chars[i].src_external;
    run.push_back(std::move(sc));
    result->chars.push_back(CharId(ids[i]));
  }

  // Fix the neighbors' links (and the document head/tail).
  if (left_id != 0) {
    left_rec.value(kCcNext) = ids.front();
    TENDAX_RETURN_IF_ERROR(UpdateCharRecord(txn, handle, left_id, left_rec));
  } else {
    handle->head = ids.front();
  }
  if (right_id != 0) {
    auto rec = ReadCharRecord(handle, right_id);
    if (!rec.ok()) return rec.status();
    rec->value(kCcPrev) = ids.back();
    TENDAX_RETURN_IF_ERROR(UpdateCharRecord(txn, handle, right_id, *rec));
  } else {
    handle->tail = ids.back();
  }

  handle->chain.InsertRun(pos, run);
  return Status::OK();
}

Result<EditResult> TextStore::InsertText(UserId user, DocumentId doc,
                                         size_t pos, const std::string& utf8,
                                         const std::string& external_source) {
  std::vector<uint32_t> cps = DecodeUtf8(utf8);
  std::vector<PasteChar> chars(cps.size());
  for (size_t i = 0; i < cps.size(); ++i) {
    chars[i].cp = cps[i];
    chars[i].src_external = external_source;
  }
  auto result = RunEdit(
      user, doc, ChangeKind::kTextInserted,
      [&](Transaction* txn, DocHandle* h, EditResult* out) {
        return InsertCharsAt(txn, h, user, pos, chars, out->version, out);
      });
  return result;
}

Result<std::vector<PasteChar>> TextStore::Copy(UserId user, DocumentId doc,
                                               size_t pos, size_t len) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto acquired = AcquireSnapshot(doc);
    if (!acquired.ok()) return acquired.status();
    SnapshotRef snap = *acquired;
    std::vector<PasteChar> out;
    // The snapshot is immutable, so no locks are needed for stability; the
    // snapshot-read transaction keeps the op inside the txn framework
    // (accounting, uniform call shape) without ever blocking on a writer.
    Status st = db_->txns()->RunSnapshotRead(
        user, [&](Transaction*) -> Status {
          if (pos + len > snap->length()) {
            return Status::OutOfRange("copy range beyond document length");
          }
          auto range = snap->LiveRange(pos, len);
          if (!range.ok()) return range.status();
          out.reserve(range->size());
          for (const SnapChar& c : *range) {
            PasteChar pc;
            pc.cp = c.cp;
            // Provenance points at the *original* character: if this char
            // was itself pasted, keep its source; otherwise this char is
            // the source.
            if (c.src_doc != 0) {
              pc.src_doc = DocumentId(c.src_doc);
              pc.src_char = CharId(c.src_char);
            } else {
              pc.src_doc = doc;
              pc.src_char = CharId(c.id);
            }
            pc.src_external = c.src_external;
            out.push_back(std::move(pc));
          }
          return Status::OK();
        });
    if (!st.ok()) return st;
    return out;
  }

  // Legacy (snapshots disabled): shared lock + handle mutex.
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();

  std::vector<PasteChar> out;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    // Shared lock: copying reads a stable snapshot of the source range.
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kDocument, doc.value),
        LockMode::kS));
    MutexLock lock(h->mu);
    if (!h->loaded) TENDAX_RETURN_IF_ERROR(LoadHandle(h, doc));
    if (pos + len > h->chain.live_size()) {
      return Status::OutOfRange("copy range beyond document length");
    }
    out.clear();
    out.reserve(len);
    for (size_t i = pos; i < pos + len; ++i) {
      const SnapChar& c = h->chain.LiveAt(i);
      PasteChar pc;
      pc.cp = c.cp;
      if (c.src_doc != 0) {
        pc.src_doc = DocumentId(c.src_doc);
        pc.src_char = CharId(c.src_char);
      } else {
        pc.src_doc = doc;
        pc.src_char = CharId(c.id);
      }
      pc.src_external = c.src_external;
      out.push_back(std::move(pc));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  return out;
}

Result<EditResult> TextStore::Paste(UserId user, DocumentId doc, size_t pos,
                                    const std::vector<PasteChar>& chars) {
  return RunEdit(user, doc, ChangeKind::kTextInserted,
                 [&](Transaction* txn, DocHandle* h, EditResult* out) {
                   return InsertCharsAt(txn, h, user, pos, chars,
                                        out->version, out);
                 });
}

Result<EditResult> TextStore::DeleteRange(UserId user, DocumentId doc,
                                          size_t pos, size_t len) {
  return RunEdit(
      user, doc, ChangeKind::kTextDeleted,
      [&](Transaction* txn, DocHandle* h, EditResult* out) -> Status {
        if (pos + len > h->chain.live_size()) {
          return Status::OutOfRange("delete range beyond document length");
        }
        for (size_t i = pos; i < pos + len; ++i) {
          const SnapChar& c = h->chain.LiveAt(i);
          auto rec = ReadCharRecord(h, c.id);
          if (!rec.ok()) return rec.status();
          rec->value(kCcDelVer) = uint64_t{out->version};
          rec->value(kCcDeletedBy) = user.value;
          TENDAX_RETURN_IF_ERROR(UpdateCharRecord(txn, h, c.id, *rec));
          out->chars.push_back(CharId(c.id));
        }
        h->chain.TombstoneRange(pos, len, out->version);
        return Status::OK();
      });
}

Result<EditResult> TextStore::DeleteChars(UserId user, DocumentId doc,
                                          const std::vector<CharId>& ids) {
  return RunEdit(
      user, doc, ChangeKind::kTextDeleted,
      [&](Transaction* txn, DocHandle* h, EditResult* out) -> Status {
        for (CharId id : ids) {
          auto rec = ReadCharRecord(h, id.value);
          if (!rec.ok()) return rec.status();
          if (rec->GetUint(kCcDelVer) != 0) continue;  // already gone
          rec->value(kCcDelVer) = uint64_t{out->version};
          rec->value(kCcDeletedBy) = user.value;
          TENDAX_RETURN_IF_ERROR(UpdateCharRecord(txn, h, id.value, *rec));
          h->chain.TombstoneById(id.value, out->version);
          out->chars.push_back(id);
        }
        return Status::OK();
      });
}

Result<EditResult> TextStore::ResurrectChars(UserId user, DocumentId doc,
                                             const std::vector<CharId>& ids) {
  return RunEdit(
      user, doc, ChangeKind::kTextInserted,
      [&](Transaction* txn, DocHandle* h, EditResult* out) -> Status {
        for (CharId id : ids) {
          auto rec = ReadCharRecord(h, id.value);
          if (!rec.ok()) return rec.status();
          if (rec->GetUint(kCcDelVer) == 0) continue;  // already live
          rec->value(kCcDelVer) = uint64_t{0};
          rec->value(kCcDeletedBy) = uint64_t{0};
          TENDAX_RETURN_IF_ERROR(UpdateCharRecord(txn, h, id.value, *rec));
          out->chars.push_back(id);
        }
        // Positions of revived characters derive from the chain; rebuild
        // the order cache from the database (rare operation: undo only).
        Status reload = LoadHandle(h, doc);
        if (!reload.ok()) {
          h->loaded = false;
          return reload;
        }
        return Status::OK();
      });
}

Result<std::string> TextStore::Text(DocumentId doc) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->Text();
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  MutexLock lock((*handle)->mu);
  return (*handle)->chain.Text();
}

Result<std::string> TextStore::TextRange(DocumentId doc, size_t pos,
                                         size_t len) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->TextRange(pos, len);
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  MutexLock lock((*handle)->mu);
  if (pos + len > (*handle)->chain.live_size()) {
    return Status::OutOfRange("text range beyond document length");
  }
  return (*handle)->chain.TextRange(pos, len);
}

Result<std::string> TextStore::TextAtVersion(DocumentId doc,
                                             Version version) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->TextAtVersion(version);
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  if (version < h->purge_floor) {
    return PurgeFloorError(doc, version, h->purge_floor);
  }
  std::string out;
  uint64_t current = h->head;
  while (current != 0) {
    auto rec = ReadCharRecord(h, current);
    if (!rec.ok()) return rec.status();
    Version ins = rec->GetUint(kCcInsVer);
    Version del = rec->GetUint(kCcDelVer);
    if (ins <= version && (del == 0 || del > version)) {
      AppendUtf8(&out, static_cast<uint32_t>(rec->GetUint(kCcCp)));
    }
    current = rec->GetUint(kCcNext);
  }
  return out;
}

Result<uint64_t> TextStore::Length(DocumentId doc) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->length();
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  MutexLock lock((*handle)->mu);
  return static_cast<uint64_t>((*handle)->chain.live_size());
}

Result<Version> TextStore::CurrentVersion(DocumentId doc) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->version();
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  MutexLock lock((*handle)->mu);
  return (*handle)->version;
}

Result<CharInfo> TextStore::CharAt(DocumentId doc, size_t pos) {
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  if (pos >= h->chain.live_size()) {
    return Status::OutOfRange("position beyond document length");
  }
  auto rec = ReadCharRecord(h, h->chain.LiveAt(pos).id);
  if (!rec.ok()) return rec.status();
  return CharInfoFromRecord(*rec);
}

Result<CharInfo> TextStore::GetChar(DocumentId doc, CharId id) {
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  auto rec = ReadCharRecord(h, id.value);
  if (!rec.ok()) return rec.status();
  return CharInfoFromRecord(*rec);
}

Result<std::vector<CharInfo>> TextStore::RangeInfo(DocumentId doc, size_t pos,
                                                   size_t len) {
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  if (pos + len > h->chain.live_size()) {
    return Status::OutOfRange("range beyond document length");
  }
  std::vector<CharInfo> out;
  out.reserve(len);
  for (size_t i = pos; i < pos + len; ++i) {
    auto rec = ReadCharRecord(h, h->chain.LiveAt(i).id);
    if (!rec.ok()) return rec.status();
    out.push_back(CharInfoFromRecord(*rec));
  }
  return out;
}

Result<std::vector<CharInfo>> TextStore::FullChain(DocumentId doc) {
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  std::vector<CharInfo> out;
  uint64_t current = h->head;
  while (current != 0) {
    auto rec = ReadCharRecord(h, current);
    if (!rec.ok()) return rec.status();
    out.push_back(CharInfoFromRecord(*rec));
    current = rec->GetUint(kCcNext);
  }
  return out;
}

Result<uint64_t> TextStore::PurgeHistory(UserId user, DocumentId doc,
                                         Version before) {
  uint64_t purged = 0;
  auto result = RunEdit(
      user, doc, ChangeKind::kMetadataChanged,
      [&](Transaction* txn, DocHandle* h, EditResult*) -> Status {
        purged = 0;
        // Snapshot the chain: id, next, deletion version.
        struct Node {
          uint64_t id;
          uint64_t next;
          Version del_ver;
        };
        std::vector<Node> chain;
        uint64_t current = h->head;
        while (current != 0) {
          auto rec = ReadCharRecord(h, current);
          if (!rec.ok()) return rec.status();
          chain.push_back(Node{current, rec->GetUint(kCcNext),
                               rec->GetUint(kCcDelVer)});
          current = rec->GetUint(kCcNext);
        }
        auto purgeable = [&](const Node& n) {
          return n.del_ver != 0 && n.del_ver <= before;
        };
        // Relink the survivors sequentially around the purged runs.
        std::vector<uint64_t> survivors;
        survivors.reserve(chain.size());
        for (const Node& node : chain) {
          if (!purgeable(node)) survivors.push_back(node.id);
        }
        for (size_t i = 0; i < survivors.size(); ++i) {
          uint64_t prev = i > 0 ? survivors[i - 1] : 0;
          uint64_t next = i + 1 < survivors.size() ? survivors[i + 1] : 0;
          auto rec = ReadCharRecord(h, survivors[i]);
          if (!rec.ok()) return rec.status();
          if (rec->GetUint(kCcPrev) != prev ||
              rec->GetUint(kCcNext) != next) {
            rec->value(kCcPrev) = prev;
            rec->value(kCcNext) = next;
            TENDAX_RETURN_IF_ERROR(
                UpdateCharRecord(txn, h, survivors[i], *rec));
          }
        }
        h->head = survivors.empty() ? 0 : survivors.front();
        h->tail = survivors.empty() ? 0 : survivors.back();

        // Physically delete the purged records, tracking the highest
        // deletion version removed: that becomes the new purge floor (any
        // version >= it already saw all purged characters as dead, so
        // reads at or above the floor stay exact).
        Version max_del = 0;
        for (const Node& node : chain) {
          if (!purgeable(node)) continue;
          auto it = h->char_rids.find(node.id);
          if (it == h->char_rids.end()) continue;
          TENDAX_RETURN_IF_ERROR(chars_table_->Delete(txn, it->second));
          TENDAX_RETURN_IF_ERROR(
              char_index_->Delete(node.id, it->second.Pack()));
          {
            BPlusTree* index = char_index_;
            uint64_t id = node.id, packed = it->second.Pack();
            txn->AddRollbackAction([index, id, packed] {
              (void)index->Insert(id, packed);
            });
          }
          h->char_rids.erase(it);
          max_del = std::max(max_del, node.del_ver);
          ++purged;
        }
        uint64_t chain_purged = h->chain.PurgeBelow(before);
        TENDAX_CHECK(chain_purged == purged);
        if (purged > 0 && max_del > h->purge_floor) {
          h->purge_floor = max_del;  // persisted by WriteDocRecord
        }
        return Status::OK();
      });
  if (!result.ok()) return result.status();
  return purged;
}

Result<DocumentInfo> TextStore::GetDocumentInfo(DocumentId doc) {
  if (snapshots_enabled_.load(std::memory_order_relaxed)) {
    auto snap = AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    return (*snap)->info();
  }
  auto handle = Handle(doc);
  if (!handle.ok()) return handle.status();
  DocHandle* h = handle->get();
  MutexLock lock(h->mu);
  DocumentInfo info;
  info.id = h->id;
  info.name = h->name;
  info.creator = h->creator;
  info.created = h->created;
  info.state = h->state;
  info.version = h->version;
  info.length = h->chain.live_size();
  return info;
}

Result<DocumentId> TextStore::FindDocumentByName(const std::string& name) {
  DocumentId found;
  TENDAX_RETURN_IF_ERROR(docs_table_->Scan([&](RecordId, const Record& rec) {
    if (rec.GetString(kDcName) == name) {
      found = DocumentId(rec.GetUint(kDcId));
      return false;
    }
    return true;
  }));
  if (!found.valid()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return found;
}

std::vector<DocumentId> TextStore::ListDocuments() {
  std::vector<DocumentId> out;
  // A partial scan yields a partial listing; the signature has no error
  // channel and callers treat the result as a best-effort directory.
  (void)docs_table_->Scan([&](RecordId, const Record& rec) {
    out.push_back(DocumentId(rec.GetUint(kDcId)));
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

Status TextStore::RenameDocument(UserId user, DocumentId doc,
                                 const std::string& name) {
  auto result = RunEdit(user, doc, ChangeKind::kDocumentRenamed,
                        [&](Transaction*, DocHandle* h, EditResult* out) {
                          h->name = name;
                          out->chars.clear();
                          return Status::OK();
                        });
  return result.ok() ? Status::OK() : result.status();
}

Status TextStore::SetDocumentState(UserId user, DocumentId doc,
                                   const std::string& state) {
  auto result = RunEdit(user, doc, ChangeKind::kDocumentStateChanged,
                        [&](Transaction*, DocHandle* h, EditResult* out) {
                          h->state = state;
                          out->chars.clear();
                          return Status::OK();
                        });
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace tendax

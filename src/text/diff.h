#ifndef TENDAX_TEXT_DIFF_H_
#define TENDAX_TEXT_DIFF_H_

#include <map>
#include <string>
#include <vector>

#include "text/text_store.h"
#include "util/ids.h"
#include "util/result.h"

namespace tendax {

/// One hunk of a version-to-version diff.
struct DiffHunk {
  enum class Kind : uint8_t { kEqual = 0, kInserted = 1, kDeleted = 2 };
  Kind kind = Kind::kEqual;
  std::string text;
  UserId author;      // who inserted/deleted (kEqual: invalid)
  CharId first_char;  // first character of the hunk
};

/// Version history utilities built on character identity: because every
/// character record carries its insertion and deletion version, the diff
/// between any two versions is *exact* and costs one chain walk — no LCS
/// approximation, no ambiguity about moved text.
class VersionDiff {
 public:
  explicit VersionDiff(TextStore* text);

  /// Hunks transforming `doc`@from into `doc`@to (from <= to). Characters
  /// live in both versions are kEqual; inserted in (from, to] are
  /// kInserted; deleted in (from, to] are kDeleted.
  Result<std::vector<DiffHunk>> Between(DocumentId doc, Version from,
                                        Version to);

  /// Unified-diff-flavoured rendering: "  text", "+ text", "- text" lines.
  Result<std::string> Render(DocumentId doc, Version from, Version to);

  /// Per-author insertion counts between two versions ("who wrote what").
  Result<std::map<UserId, uint64_t>> Contributions(DocumentId doc,
                                                   Version from, Version to);

 private:
  TextStore* const text_;
};

}  // namespace tendax

#endif  // TENDAX_TEXT_DIFF_H_

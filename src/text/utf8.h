#ifndef TENDAX_TEXT_UTF8_H_
#define TENDAX_TEXT_UTF8_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace tendax {

/// Minimal UTF-8 codec. TeNDaX stores one database record per character, so
/// edit operations segment incoming text into code points first. Invalid
/// bytes decode as U+FFFD so editor input can never corrupt the store.

/// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(std::string* out, uint32_t cp);

/// Encodes a sequence of code points.
std::string EncodeUtf8(const std::vector<uint32_t>& cps);

/// Decodes UTF-8 bytes into code points (invalid sequences -> U+FFFD).
std::vector<uint32_t> DecodeUtf8(const std::string& bytes);

}  // namespace tendax

#endif  // TENDAX_TEXT_UTF8_H_

#ifndef TENDAX_SEARCH_SEARCH_ENGINE_H_
#define TENDAX_SEARCH_SEARCH_ENGINE_H_

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "document/document_model.h"
#include "lineage/lineage.h"
#include "meta/meta_store.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// How result lists are ordered — the paper's ranking options
/// ("most cited", "newest", …).
enum class Ranking : uint8_t {
  kRelevance = 1,  // tf-idf
  kNewest = 2,     // last edit time
  kMostCited = 3,  // lineage in-degree
  kMostRead = 4,   // audit read count
};

const char* RankingName(Ranking ranking);

struct SearchResult {
  DocumentId doc;
  double score = 0;
  std::string name;
  std::string snippet;
};

/// Optional metadata filters applied before ranking.
struct SearchFilter {
  std::optional<UserId> author;       // must be among the doc's authors
  std::optional<std::string> state;   // document lifecycle state
  Timestamp edited_since = 0;         // last edit >= this
  std::optional<std::string> element_type;  // term must fall inside such an
                                            // element (structure search)
};

/// Lowercases and splits on non-alphanumerics.
std::vector<std::string> Tokenize(const std::string& text);

/// Content / structure / metadata search with pluggable ranking over an
/// incrementally maintained in-memory inverted index (derived data, rebuilt
/// at startup; kept fresh by re-indexing documents as their committed edits
/// arrive on the event bus).
class SearchEngine {
 public:
  SearchEngine(Database* db, TextStore* text, MetaStore* meta,
               DocumentModel* docs, LineageAnalyzer* lineage);

  /// Builds the index over existing documents and subscribes to commits.
  Status Init();

  /// Index maintenance policy. Lazy (default): committed edits only mark
  /// the document dirty (O(1) per keystroke) and re-indexing happens at
  /// query time. Eager: every committed edit re-tokenizes the document —
  /// fresher index, but adds O(doc) to each editing transaction's commit
  /// path (the ablation measured in bench_search).
  void SetEagerIndexing(bool eager) { eager_ = eager; }

  /// Multi-term AND query (terms are tokenized from `query`).
  Result<std::vector<SearchResult>> Search(
      const std::string& query, Ranking ranking = Ranking::kRelevance,
      const SearchFilter& filter = {}, size_t limit = 10);

  /// Exact phrase query (verified against document text).
  Result<std::vector<SearchResult>> SearchPhrase(
      const std::string& phrase, Ranking ranking = Ranking::kRelevance,
      size_t limit = 10);

  /// Re-indexes one document now (also used internally on change events).
  Status IndexDocument(DocumentId doc);

  size_t IndexedTerms() const;
  size_t IndexedDocuments() const;
  size_t DirtyDocuments() const;

 private:
  struct DocPostings {
    uint64_t term_count = 0;                      // total tokens
    std::unordered_map<std::string, std::vector<size_t>> positions;
  };

  /// Re-indexes every document marked dirty since the last query.
  Status FlushDirty();

  Result<double> RankScore(DocumentId doc, Ranking ranking,
                           const std::vector<std::string>& terms);
  Status ApplyFilter(const SearchFilter& filter,
                     const std::vector<std::string>& terms,
                     std::set<uint64_t>* candidates);
  std::string Snippet(DocumentId doc, const std::string& term);
  double TfIdf(const std::vector<std::string>& terms, uint64_t doc) const;

  Database* const db_;
  TextStore* const text_;
  MetaStore* const meta_;
  DocumentModel* const docs_;
  LineageAnalyzer* const lineage_;

  // Guards the inverted index; released around text_->Read during reindex,
  // so it may sit alongside (never inside) the document handle lock.
  mutable Mutex mu_{"search.mu", lockorder::kRankDocument};
  // term -> set of docs; doc -> postings.
  std::unordered_map<std::string, std::set<uint64_t>> term_docs_
      TENDAX_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, DocPostings> doc_postings_
      TENDAX_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Version> indexed_version_
      TENDAX_GUARDED_BY(mu_);
  std::set<uint64_t> dirty_docs_ TENDAX_GUARDED_BY(mu_);
  std::atomic<bool> eager_{false};
};

}  // namespace tendax

#endif  // TENDAX_SEARCH_SEARCH_ENGINE_H_

#include "search/search_engine.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/deadline.h"

namespace tendax {

const char* RankingName(Ranking ranking) {
  switch (ranking) {
    case Ranking::kRelevance:
      return "relevance";
    case Ranking::kNewest:
      return "newest";
    case Ranking::kMostCited:
      return "most-cited";
    case Ranking::kMostRead:
      return "most-read";
  }
  return "?";
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (unsigned char c : text) {
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

SearchEngine::SearchEngine(Database* db, TextStore* text, MetaStore* meta,
                           DocumentModel* docs, LineageAnalyzer* lineage)
    : db_(db), text_(text), meta_(meta), docs_(docs), lineage_(lineage) {}

Status SearchEngine::Init() {
  for (DocumentId doc : text_->ListDocuments()) {
    TENDAX_RETURN_IF_ERROR(IndexDocument(doc));
  }
  db_->txns()->AddCommitListener(
      [this](TxnId, UserId, const ChangeBatch& batch) {
        for (const ChangeEvent& ev : batch) {
          if (!ev.doc.valid()) continue;
          switch (ev.kind) {
            case ChangeKind::kTextInserted:
            case ChangeKind::kTextDeleted:
            case ChangeKind::kDocumentCreated:
            case ChangeKind::kDocumentRenamed:
            case ChangeKind::kUndoApplied:
            case ChangeKind::kRedoApplied:
              if (eager_.load(std::memory_order_relaxed)) {
                // A failed eager reindex leaves the previous postings; the
                // commit listener cannot fail the already-committed txn.
                (void)IndexDocument(ev.doc);
              } else {
                MutexLock lock(mu_);
                dirty_docs_.insert(ev.doc.value);
              }
              break;
            default:
              break;
          }
        }
      });
  return Status::OK();
}

Status SearchEngine::IndexDocument(DocumentId doc) {
  // One MVCC snapshot gives version, text and name from the same committed
  // state — the three reads can never straddle a concurrent edit (the
  // legacy path below performed them independently and could index text of
  // version N+1 under version N).
  Version version;
  std::string content;
  std::string name;
  if (text_->snapshots_enabled()) {
    auto snap = text_->AcquireSnapshot(doc);
    if (!snap.ok()) return snap.status();
    version = (*snap)->version();
    content = (*snap)->Text();
    name = (*snap)->info().name;
  } else {
    auto v = text_->CurrentVersion(doc);
    if (!v.ok()) return v.status();
    version = *v;
    auto c = text_->Text(doc);
    if (!c.ok()) return c.status();
    content = std::move(*c);
    auto info = text_->GetDocumentInfo(doc);
    name = info.ok() ? info->name : "";
  }
  {
    MutexLock lock(mu_);
    auto it = indexed_version_.find(doc.value);
    if (it != indexed_version_.end() && it->second >= version) {
      dirty_docs_.erase(doc.value);
      return Status::OK();  // already fresh (events may arrive out of order)
    }
  }

  std::vector<std::string> tokens = Tokenize(content + " " + name);

  MutexLock lock(mu_);
  // Drop old postings.
  auto old = doc_postings_.find(doc.value);
  if (old != doc_postings_.end()) {
    for (const auto& [term, positions] : old->second.positions) {
      auto td = term_docs_.find(term);
      if (td != term_docs_.end()) {
        td->second.erase(doc.value);
        if (td->second.empty()) term_docs_.erase(td);
      }
    }
  }
  DocPostings postings;
  postings.term_count = tokens.size();
  for (size_t i = 0; i < tokens.size(); ++i) {
    postings.positions[tokens[i]].push_back(i);
    term_docs_[tokens[i]].insert(doc.value);
  }
  doc_postings_[doc.value] = std::move(postings);
  indexed_version_[doc.value] = version;
  dirty_docs_.erase(doc.value);
  return Status::OK();
}

Status SearchEngine::FlushDirty() {
  std::vector<uint64_t> dirty;
  {
    MutexLock lock(mu_);
    dirty.assign(dirty_docs_.begin(), dirty_docs_.end());
  }
  for (uint64_t doc : dirty) {
    TENDAX_RETURN_IF_ERROR(IndexDocument(DocumentId(doc)));
  }
  return Status::OK();
}

double SearchEngine::TfIdf(const std::vector<std::string>& terms,
                           uint64_t doc) const {
  auto dp = doc_postings_.find(doc);
  if (dp == doc_postings_.end() || dp->second.term_count == 0) return 0;
  double n_docs = static_cast<double>(doc_postings_.size());
  double score = 0;
  for (const std::string& term : terms) {
    auto pos = dp->second.positions.find(term);
    if (pos == dp->second.positions.end()) continue;
    double tf = static_cast<double>(pos->second.size()) /
                static_cast<double>(dp->second.term_count);
    auto td = term_docs_.find(term);
    double df = td == term_docs_.end()
                    ? 1
                    : static_cast<double>(td->second.size());
    score += tf * std::log(1.0 + n_docs / df);
  }
  return score;
}

Result<double> SearchEngine::RankScore(DocumentId doc, Ranking ranking,
                                       const std::vector<std::string>& terms) {
  switch (ranking) {
    case Ranking::kRelevance: {
      MutexLock lock(mu_);
      return TfIdf(terms, doc.value);
    }
    case Ranking::kNewest: {
      auto meta = meta_->Meta(doc);
      return static_cast<double>(meta.last_edit_at);
    }
    case Ranking::kMostCited: {
      auto cites = lineage_->CitationCount(doc);
      if (!cites.ok()) return cites.status();
      return static_cast<double>(*cites);
    }
    case Ranking::kMostRead: {
      auto meta = meta_->Meta(doc);
      return static_cast<double>(meta.total_reads);
    }
  }
  return Status::InvalidArgument("unknown ranking");
}

Status SearchEngine::ApplyFilter(const SearchFilter& filter,
                                 const std::vector<std::string>& terms,
                                 std::set<uint64_t>* candidates) {
  if (filter.author.has_value() || filter.edited_since != 0) {
    for (auto it = candidates->begin(); it != candidates->end();) {
      auto meta = meta_->Meta(DocumentId(*it));
      bool keep = true;
      if (filter.author.has_value() &&
          !meta.authors.count(*filter.author)) {
        keep = false;
      }
      if (filter.edited_since != 0 &&
          meta.last_edit_at < filter.edited_since) {
        keep = false;
      }
      it = keep ? std::next(it) : candidates->erase(it);
    }
  }
  if (filter.state.has_value()) {
    for (auto it = candidates->begin(); it != candidates->end();) {
      auto info = text_->GetDocumentInfo(DocumentId(*it));
      bool keep = info.ok() && info->state == *filter.state;
      it = keep ? std::next(it) : candidates->erase(it);
    }
  }
  if (filter.element_type.has_value()) {
    // Structure search: at least one query term must occur inside an
    // element of the requested type.
    for (auto it = candidates->begin(); it != candidates->end();) {
      DocumentId doc(*it);
      bool keep = false;
      auto tree = docs_->ElementTree(doc);
      if (tree.ok()) {
        for (const ElementInfo& e : *tree) {
          if (e.type != *filter.element_type) continue;
          if (!e.start_pos || !e.end_pos) continue;
          auto piece =
              text_->TextRange(doc, *e.start_pos,
                               *e.end_pos - *e.start_pos + 1);
          if (!piece.ok()) continue;
          std::vector<std::string> inside = Tokenize(*piece);
          for (const std::string& term : terms) {
            if (std::find(inside.begin(), inside.end(), term) !=
                inside.end()) {
              keep = true;
              break;
            }
          }
          if (keep) break;
        }
      }
      it = keep ? std::next(it) : candidates->erase(it);
    }
  }
  return Status::OK();
}

std::string SearchEngine::Snippet(DocumentId doc, const std::string& term) {
  auto content = text_->Text(doc);
  if (!content.ok()) return "";
  std::string lowered = *content;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  size_t at = lowered.find(term);
  if (at == std::string::npos) return content->substr(0, 40);
  size_t start = at > 20 ? at - 20 : 0;
  std::string snip = content->substr(start, 60);
  for (char& c : snip) {
    if (c == '\n') c = ' ';
  }
  return (start > 0 ? "..." : "") + snip +
         (start + 60 < content->size() ? "..." : "");
}

Result<std::vector<SearchResult>> SearchEngine::Search(
    const std::string& query, Ranking ranking, const SearchFilter& filter,
    size_t limit) {
  std::vector<std::string> terms = Tokenize(query);
  if (terms.empty()) return Status::InvalidArgument("empty query");
  TENDAX_RETURN_IF_ERROR(FlushDirty());

  std::set<uint64_t> candidates;
  {
    MutexLock lock(mu_);
    bool first = true;
    for (const std::string& term : terms) {
      auto it = term_docs_.find(term);
      std::set<uint64_t> docs =
          it == term_docs_.end() ? std::set<uint64_t>() : it->second;
      if (first) {
        candidates = std::move(docs);
        first = false;
      } else {
        std::set<uint64_t> kept;
        std::set_intersection(candidates.begin(), candidates.end(),
                              docs.begin(), docs.end(),
                              std::inserter(kept, kept.begin()));
        candidates = std::move(kept);
      }
      if (candidates.empty()) break;
    }
  }
  TENDAX_RETURN_IF_ERROR(ApplyFilter(filter, terms, &candidates));

  // "Most cited" needs the provenance graph: build it once per query, not
  // once per candidate.
  std::unordered_map<uint64_t, uint64_t> citations;
  if (ranking == Ranking::kMostCited) {
    auto graph = lineage_->BuildGraph();
    if (!graph.ok()) return graph.status();
    std::unordered_map<uint64_t, std::set<uint64_t>> citing;
    for (const auto& [edge, count] : graph->internal_edges) {
      citing[edge.first].insert(edge.second);
    }
    for (const auto& [doc, dsts] : citing) {
      citations[doc] = dsts.size();
    }
  }

  std::vector<SearchResult> results;
  for (uint64_t doc : candidates) {
    // The per-candidate scoring loop is the unbounded part of a query (a
    // broad term can match every document), so it honors the caller's
    // request deadline: better a typed refusal than a result nobody is
    // still waiting for.
    if (RequestDeadline::Expired()) {
      return Status::DeadlineExceeded("request deadline expired mid-scan");
    }
    SearchResult r;
    r.doc = DocumentId(doc);
    if (ranking == Ranking::kMostCited) {
      auto it = citations.find(doc);
      r.score = it == citations.end() ? 0 : static_cast<double>(it->second);
    } else {
      auto score = RankScore(r.doc, ranking, terms);
      if (!score.ok()) return score.status();
      r.score = *score;
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (results.size() > limit) results.resize(limit);
  // Names and snippets are presentation data: only fetch them for the
  // results actually returned.
  for (SearchResult& r : results) {
    auto info = text_->GetDocumentInfo(r.doc);
    if (info.ok()) r.name = info->name;
    r.snippet = Snippet(r.doc, terms.front());
  }
  return results;
}

Result<std::vector<SearchResult>> SearchEngine::SearchPhrase(
    const std::string& phrase, Ranking ranking, size_t limit) {
  auto results = Search(phrase, ranking, {}, SIZE_MAX);
  if (!results.ok()) return results;
  std::string needle = phrase;
  std::transform(needle.begin(), needle.end(), needle.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  std::vector<SearchResult> verified;
  for (SearchResult& r : *results) {
    auto content = text_->Text(r.doc);
    if (!content.ok()) continue;
    std::string lowered = *content;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lowered.find(needle) != std::string::npos) {
      verified.push_back(std::move(r));
    }
  }
  if (verified.size() > limit) verified.resize(limit);
  return verified;
}

size_t SearchEngine::IndexedTerms() const {
  MutexLock lock(mu_);
  return term_docs_.size();
}

size_t SearchEngine::IndexedDocuments() const {
  MutexLock lock(mu_);
  return doc_postings_.size();
}

size_t SearchEngine::DirtyDocuments() const {
  MutexLock lock(mu_);
  return dirty_docs_.size();
}

}  // namespace tendax

#include "security/access_control.h"

#include <algorithm>

namespace tendax {

namespace {

Schema UsersSchema() {
  return Schema({{"user_id", ColumnType::kUint64},
                 {"name", ColumnType::kString}});
}

Schema RolesSchema() {
  return Schema({{"role_id", ColumnType::kUint64},
                 {"name", ColumnType::kString}});
}

Schema MembersSchema() {
  return Schema({{"role_id", ColumnType::kUint64},
                 {"user_id", ColumnType::kUint64}});
}

Schema AclSchema() {
  return Schema({{"ace_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"is_role", ColumnType::kBool},
                 {"subject", ColumnType::kUint64},
                 {"right", ColumnType::kUint64},
                 {"allow", ColumnType::kBool},
                 {"scope_start", ColumnType::kUint64},
                 {"scope_end", ColumnType::kUint64},
                 {"granted_by", ColumnType::kUint64},
                 {"at", ColumnType::kUint64}});
}

}  // namespace

const char* RightName(Right right) {
  switch (right) {
    case Right::kRead:
      return "read";
    case Right::kWrite:
      return "write";
    case Right::kLayout:
      return "layout";
    case Right::kStructure:
      return "structure";
    case Right::kGrant:
      return "grant";
    case Right::kWorkflow:
      return "workflow";
  }
  return "?";
}

AccessControl::AccessControl(Database* db, TextStore* text, bool default_open)
    : db_(db), text_(text), default_open_(default_open) {}

Status AccessControl::Init() {
  auto users = db_->EnsureTable("tendax_users", UsersSchema());
  if (!users.ok()) return users.status();
  users_table_ = *users;
  auto roles = db_->EnsureTable("tendax_roles", RolesSchema());
  if (!roles.ok()) return roles.status();
  roles_table_ = *roles;
  auto members = db_->EnsureTable("tendax_role_members", MembersSchema());
  if (!members.ok()) return members.status();
  members_table_ = *members;
  auto acl = db_->EnsureTable("tendax_acl", AclSchema());
  if (!acl.ok()) return acl.status();
  acl_table_ = *acl;

  uint64_t max_user = 0, max_role = 0, max_ace = 0;
  // Init is single-threaded, but the caches are guarded: hold the writer
  // lock across the rebuild so the annotations stay honest.
  WriterMutexLock lock(mu_);
  TENDAX_RETURN_IF_ERROR(
      users_table_->Scan([&](RecordId, const Record& rec) {
        users_[rec.GetUint(0)] = rec.GetString(1);
        max_user = std::max(max_user, rec.GetUint(0));
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      roles_table_->Scan([&](RecordId, const Record& rec) {
        roles_[rec.GetUint(0)] = rec.GetString(1);
        max_role = std::max(max_role, rec.GetUint(0));
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      members_table_->Scan([&](RecordId, const Record& rec) {
        members_[rec.GetUint(0)].insert(rec.GetUint(1));
        roles_of_[rec.GetUint(1)].insert(rec.GetUint(0));
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      acl_table_->Scan([&](RecordId, const Record& rec) {
        AccessEntry e;
        e.ace_id = rec.GetUint(0);
        e.doc = DocumentId(rec.GetUint(1));
        e.is_role = rec.GetBool(2);
        e.subject = rec.GetUint(3);
        e.right = static_cast<Right>(rec.GetUint(4));
        e.allow = rec.GetBool(5);
        e.scope_start = rec.GetUint(6);
        e.scope_end = rec.GetUint(7);
        e.granted_by = UserId(rec.GetUint(8));
        e.at = rec.GetUint(9);
        acl_[e.doc.value].push_back(e);
        max_ace = std::max(max_ace, e.ace_id);
        return true;
      }));
  next_user_id_ = max_user + 1;
  next_role_id_ = max_role + 1;
  next_ace_id_ = max_ace + 1;
  return Status::OK();
}

Result<UserId> AccessControl::CreateUser(const std::string& name) {
  {
    ReaderMutexLock lock(mu_);
    for (const auto& [id, n] : users_) {
      if (n == name) return Status::AlreadyExists("user '" + name + "'");
    }
  }
  UserId id(next_user_id_.fetch_add(1));
  Status st = db_->txns()->RunInTxn(id, [&](Transaction* txn) {
    return users_table_->Insert(txn, Record({id.value, name})).status();
  });
  if (!st.ok()) return st;
  WriterMutexLock lock(mu_);
  users_[id.value] = name;
  return id;
}

Result<RoleId> AccessControl::CreateRole(const std::string& name) {
  {
    ReaderMutexLock lock(mu_);
    for (const auto& [id, n] : roles_) {
      if (n == name) return Status::AlreadyExists("role '" + name + "'");
    }
  }
  RoleId id(next_role_id_.fetch_add(1));
  Status st = db_->txns()->RunInTxn(UserId(0), [&](Transaction* txn) {
    return roles_table_->Insert(txn, Record({id.value, name})).status();
  });
  if (!st.ok()) return st;
  WriterMutexLock lock(mu_);
  roles_[id.value] = name;
  return id;
}

Status AccessControl::AssignRole(UserId user, RoleId role) {
  {
    ReaderMutexLock lock(mu_);
    if (!users_.count(user.value)) return Status::NotFound("unknown user");
    if (!roles_.count(role.value)) return Status::NotFound("unknown role");
  }
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) {
    return members_table_->Insert(txn, Record({role.value, user.value}))
        .status();
  });
  if (!st.ok()) return st;
  WriterMutexLock lock(mu_);
  members_[role.value].insert(user.value);
  roles_of_[user.value].insert(role.value);
  return Status::OK();
}

Status AccessControl::RevokeRole(UserId user, RoleId role) {
  RecordId target;
  bool found = false;
  TENDAX_RETURN_IF_ERROR(
      members_table_->Scan([&](RecordId rid, const Record& rec) {
        if (rec.GetUint(0) == role.value && rec.GetUint(1) == user.value) {
          target = rid;
          found = true;
          return false;
        }
        return true;
      }));
  if (!found) return Status::NotFound("membership not found");
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) {
    return members_table_->Delete(txn, target);
  });
  if (!st.ok()) return st;
  WriterMutexLock lock(mu_);
  members_[role.value].erase(user.value);
  roles_of_[user.value].erase(role.value);
  return Status::OK();
}

Result<std::string> AccessControl::UserName(UserId user) const {
  ReaderMutexLock lock(mu_);
  auto it = users_.find(user.value);
  if (it == users_.end()) return Status::NotFound("unknown user");
  return it->second;
}

Result<UserId> AccessControl::FindUser(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  for (const auto& [id, n] : users_) {
    if (n == name) return UserId(id);
  }
  return Status::NotFound("no user named '" + name + "'");
}

Result<RoleId> AccessControl::FindRole(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  for (const auto& [id, n] : roles_) {
    if (n == name) return RoleId(id);
  }
  return Status::NotFound("no role named '" + name + "'");
}

std::set<RoleId> AccessControl::RolesOf(UserId user) const {
  ReaderMutexLock lock(mu_);
  std::set<RoleId> out;
  auto it = roles_of_.find(user.value);
  if (it != roles_of_.end()) {
    for (uint64_t r : it->second) out.insert(RoleId(r));
  }
  return out;
}

std::vector<UserId> AccessControl::UsersInRole(RoleId role) const {
  ReaderMutexLock lock(mu_);
  std::vector<UserId> out;
  auto it = members_.find(role.value);
  if (it != members_.end()) {
    for (uint64_t u : it->second) out.push_back(UserId(u));
  }
  return out;
}

Status AccessControl::PersistEntry(UserId grantor, const AccessEntry& entry) {
  // Only holders of the grant right may change rights.
  auto allowed = Check(grantor, entry.doc, Right::kGrant);
  if (!allowed.ok()) return allowed.status();
  if (!*allowed) {
    return Status::PermissionDenied(
        "user " + grantor.ToString() + " may not change rights on " +
        entry.doc.ToString());
  }
  Status st = db_->txns()->RunInTxn(grantor, [&](Transaction* txn) -> Status {
    auto rid = acl_table_->Insert(
        txn, Record({entry.ace_id, entry.doc.value, entry.is_role,
                     entry.subject, uint64_t{static_cast<uint64_t>(entry.right)},
                     entry.allow, entry.scope_start, entry.scope_end,
                     grantor.value, uint64_t{entry.at}}));
    if (!rid.ok()) return rid.status();
    ChangeEvent ev;
    ev.kind = ChangeKind::kSecurityChanged;
    ev.doc = entry.doc;
    ev.user = grantor;
    ev.at = entry.at;
    ev.detail = std::string(RightName(entry.right)) +
                (entry.allow ? "+granted" : "+denied");
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  WriterMutexLock lock(mu_);
  acl_[entry.doc.value].push_back(entry);
  return Status::OK();
}

Status AccessControl::GrantUser(UserId grantor, DocumentId doc,
                                UserId subject, Right right, bool allow) {
  AccessEntry e;
  e.ace_id = next_ace_id_.fetch_add(1);
  e.doc = doc;
  e.is_role = false;
  e.subject = subject.value;
  e.right = right;
  e.allow = allow;
  e.granted_by = grantor;
  e.at = db_->clock()->NowMicros();
  return PersistEntry(grantor, e);
}

Status AccessControl::GrantRole(UserId grantor, DocumentId doc,
                                RoleId subject, Right right, bool allow) {
  AccessEntry e;
  e.ace_id = next_ace_id_.fetch_add(1);
  e.doc = doc;
  e.is_role = true;
  e.subject = subject.value;
  e.right = right;
  e.allow = allow;
  e.granted_by = grantor;
  e.at = db_->clock()->NowMicros();
  return PersistEntry(grantor, e);
}

Status AccessControl::GrantUserRange(UserId grantor, DocumentId doc,
                                     UserId subject, Right right, size_t pos,
                                     size_t len, bool allow) {
  if (len == 0) return Status::InvalidArgument("empty range");
  auto info = text_->RangeInfo(doc, pos, len);
  if (!info.ok()) return info.status();
  AccessEntry e;
  e.ace_id = next_ace_id_.fetch_add(1);
  e.doc = doc;
  e.is_role = false;
  e.subject = subject.value;
  e.right = right;
  e.allow = allow;
  e.scope_start = info->front().id.value;
  e.scope_end = info->back().id.value;
  e.granted_by = grantor;
  e.at = db_->clock()->NowMicros();
  return PersistEntry(grantor, e);
}

bool AccessControl::SubjectMatches(const AccessEntry& entry, UserId user,
                                   const std::set<RoleId>& roles) const {
  if (!entry.is_role) return entry.subject == user.value;
  return roles.count(RoleId(entry.subject)) > 0;
}

bool AccessControl::ScopeCovers(const AccessEntry& entry, DocumentId doc,
                                uint64_t char_id) const {
  if (entry.scope_start == 0) return true;  // document-wide
  if (char_id == 0) return false;           // doc-level check vs range entry
  // Resolve the range through current document order.
  auto text = text_;
  auto doc_info = text->GetDocumentInfo(doc);
  if (!doc_info.ok()) return false;
  // Position of the scope anchors and the target character.
  auto find_pos = [&](uint64_t id) -> std::optional<size_t> {
    auto length = text->Length(doc);
    if (!length.ok()) return std::nullopt;
    // Walk via RangeInfo in chunks to find the id (anchors are usually
    // close together; documents in ACL checks are modest).
    auto infos = text->RangeInfo(doc, 0, *length);
    if (!infos.ok()) return std::nullopt;
    for (size_t i = 0; i < infos->size(); ++i) {
      if ((*infos)[i].id.value == id) return i;
    }
    return std::nullopt;
  };
  auto s = find_pos(entry.scope_start);
  auto e = find_pos(entry.scope_end);
  auto c = find_pos(char_id);
  if (!s || !c) return false;
  size_t end = e ? *e : *s;
  return *c >= *s && *c <= end;
}

Result<bool> AccessControl::Check(UserId user, DocumentId doc,
                                  Right right) const {
  return CheckAt(user, doc, right, SIZE_MAX);
}

Result<bool> AccessControl::CheckAt(UserId user, DocumentId doc, Right right,
                                    size_t pos) const {
  auto info = text_->GetDocumentInfo(doc);
  if (!info.ok()) return info.status();
  if (info->creator == user) return true;  // creators keep all rights

  uint64_t char_id = 0;
  if (pos != SIZE_MAX) {
    auto at = text_->CharAt(doc, pos);
    if (at.ok()) char_id = at->id.value;
  }

  std::set<RoleId> roles = RolesOf(user);
  std::vector<AccessEntry> entries;
  {
    ReaderMutexLock lock(mu_);
    auto it = acl_.find(doc.value);
    if (it != acl_.end()) entries = it->second;
  }
  bool granted = false;
  bool any_entry_for_right = false;
  for (const AccessEntry& e : entries) {
    if (e.right != right) continue;
    if (e.allow) any_entry_for_right = true;  // grants close the world
    if (!SubjectMatches(e, user, roles)) continue;
    if (!ScopeCovers(e, doc, char_id)) continue;
    if (!e.allow) return false;  // explicit deny wins
    granted = true;
  }
  if (granted) return true;
  // Once a document carries explicit entries for a right, those entries are
  // authoritative (closed world); otherwise the store default applies.
  if (any_entry_for_right) return false;
  return default_open_;
}

Status AccessControl::Require(UserId user, DocumentId doc,
                              Right right) const {
  auto ok = Check(user, doc, right);
  if (!ok.ok()) return ok.status();
  if (!*ok) {
    return Status::PermissionDenied("user " + user.ToString() + " lacks " +
                                    RightName(right) + " on " +
                                    doc.ToString());
  }
  return Status::OK();
}

std::vector<AccessEntry> AccessControl::EntriesFor(DocumentId doc) const {
  ReaderMutexLock lock(mu_);
  auto it = acl_.find(doc.value);
  return it == acl_.end() ? std::vector<AccessEntry>() : it->second;
}

}  // namespace tendax

#ifndef TENDAX_SECURITY_ACCESS_CONTROL_H_
#define TENDAX_SECURITY_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Rights a principal can hold on a document (or a character range of one).
enum class Right : uint8_t {
  kRead = 1,
  kWrite = 2,
  kLayout = 3,
  kStructure = 4,
  kGrant = 5,     // may change access rights
  kWorkflow = 6,  // may define/route business processes
};

const char* RightName(Right right);

/// One access-control entry. `scope_start == 0` means document-wide;
/// otherwise the entry covers the character-id range [scope_start,
/// scope_end] in document order (the paper's character-level security).
struct AccessEntry {
  uint64_t ace_id = 0;
  DocumentId doc;
  bool is_role = false;
  uint64_t subject = 0;  // UserId or RoleId value
  Right right = Right::kRead;
  bool allow = true;     // explicit deny wins over grants
  uint64_t scope_start = 0;
  uint64_t scope_end = 0;
  UserId granted_by;
  Timestamp at = 0;
};

/// Users, roles, role membership and document/range ACL enforcement.
///
/// Resolution: an explicit deny matching the user (directly or via a role)
/// beats any grant; otherwise any matching grant allows; otherwise the
/// document's default applies (creator: everything; others: the store-wide
/// `default_open` policy, which mirrors the demo's open LAN-party setup).
class AccessControl {
 public:
  AccessControl(Database* db, TextStore* text, bool default_open = true);

  Status Init();

  // --- principals ---
  Result<UserId> CreateUser(const std::string& name) TENDAX_EXCLUDES(mu_);
  Result<RoleId> CreateRole(const std::string& name) TENDAX_EXCLUDES(mu_);
  Status AssignRole(UserId user, RoleId role) TENDAX_EXCLUDES(mu_);
  Status RevokeRole(UserId user, RoleId role) TENDAX_EXCLUDES(mu_);
  Result<std::string> UserName(UserId user) const TENDAX_EXCLUDES(mu_);
  Result<UserId> FindUser(const std::string& name) const
      TENDAX_EXCLUDES(mu_);
  Result<RoleId> FindRole(const std::string& name) const
      TENDAX_EXCLUDES(mu_);
  std::set<RoleId> RolesOf(UserId user) const TENDAX_EXCLUDES(mu_);
  std::vector<UserId> UsersInRole(RoleId role) const TENDAX_EXCLUDES(mu_);

  // --- grants ---
  Status GrantUser(UserId grantor, DocumentId doc, UserId subject,
                   Right right, bool allow = true);
  Status GrantRole(UserId grantor, DocumentId doc, RoleId subject,
                   Right right, bool allow = true);
  /// Character-range entry: covers the live range [pos, pos+len) as of now,
  /// anchored to character ids so it survives surrounding edits.
  Status GrantUserRange(UserId grantor, DocumentId doc, UserId subject,
                        Right right, size_t pos, size_t len,
                        bool allow = true);

  /// Full check at document scope.
  Result<bool> Check(UserId user, DocumentId doc, Right right) const
      TENDAX_EXCLUDES(mu_);
  /// Check at a character position (range entries considered).
  Result<bool> CheckAt(UserId user, DocumentId doc, Right right,
                       size_t pos) const TENDAX_EXCLUDES(mu_);
  /// Convenience: returns PermissionDenied unless allowed.
  Status Require(UserId user, DocumentId doc, Right right) const;

  std::vector<AccessEntry> EntriesFor(DocumentId doc) const
      TENDAX_EXCLUDES(mu_);

 private:
  Status PersistEntry(UserId grantor, const AccessEntry& entry);
  bool SubjectMatches(const AccessEntry& entry, UserId user,
                      const std::set<RoleId>& roles) const;
  /// Does `entry`'s scope cover the character with id `char_id` (resolved
  /// through the document's current order)? Document-wide entries always do.
  bool ScopeCovers(const AccessEntry& entry, DocumentId doc,
                   uint64_t char_id) const;

  Database* const db_;
  TextStore* const text_;
  const bool default_open_;

  HeapTable* users_table_ = nullptr;
  HeapTable* roles_table_ = nullptr;
  HeapTable* members_table_ = nullptr;
  HeapTable* acl_table_ = nullptr;

  // Reader/writer lock: every Check/CheckAt takes the read side (the hot
  // enforcement path, potentially per keystroke), while principal and
  // grant mutations take the write side. Never held across db_ / text_
  // calls — CheckAt copies the entries out before resolving scopes.
  mutable SharedMutex mu_{"acl.mu", lockorder::kRankDocument};
  std::unordered_map<uint64_t, std::string> users_ TENDAX_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::string> roles_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, std::set<uint64_t>> members_
      TENDAX_GUARDED_BY(mu_);  // role -> users
  std::map<uint64_t, std::set<uint64_t>> roles_of_
      TENDAX_GUARDED_BY(mu_);  // user -> roles
  std::map<uint64_t, std::vector<AccessEntry>> acl_
      TENDAX_GUARDED_BY(mu_);  // doc -> entries
  std::atomic<uint64_t> next_user_id_{1};
  std::atomic<uint64_t> next_role_id_{1};
  std::atomic<uint64_t> next_ace_id_{1};
};

}  // namespace tendax

#endif  // TENDAX_SECURITY_ACCESS_CONTROL_H_

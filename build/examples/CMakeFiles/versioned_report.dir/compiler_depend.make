# Empty compiler generated dependencies file for versioned_report.
# This may be replaced when dependencies are built.

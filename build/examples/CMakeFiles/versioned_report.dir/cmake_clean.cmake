file(REMOVE_RECURSE
  "CMakeFiles/versioned_report.dir/versioned_report.cpp.o"
  "CMakeFiles/versioned_report.dir/versioned_report.cpp.o.d"
  "versioned_report"
  "versioned_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tendax_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tendax_shell.dir/tendax_shell.cpp.o"
  "CMakeFiles/tendax_shell.dir/tendax_shell.cpp.o.d"
  "tendax_shell"
  "tendax_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tendax_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lan_party.
# This may be replaced when dependencies are built.

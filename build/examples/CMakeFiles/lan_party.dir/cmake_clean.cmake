file(REMOVE_RECURSE
  "CMakeFiles/lan_party.dir/lan_party.cpp.o"
  "CMakeFiles/lan_party.dir/lan_party.cpp.o.d"
  "lan_party"
  "lan_party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lan_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workflow_document.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workflow_document.dir/workflow_document.cpp.o"
  "CMakeFiles/workflow_document.dir/workflow_document.cpp.o.d"
  "workflow_document"
  "workflow_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

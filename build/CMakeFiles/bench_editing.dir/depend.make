# Empty dependencies file for bench_editing.
# This may be replaced when dependencies are built.

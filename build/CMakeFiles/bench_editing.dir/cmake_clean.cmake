file(REMOVE_RECURSE
  "CMakeFiles/bench_editing.dir/bench/bench_editing.cpp.o"
  "CMakeFiles/bench_editing.dir/bench/bench_editing.cpp.o.d"
  "bench/bench_editing"
  "bench/bench_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

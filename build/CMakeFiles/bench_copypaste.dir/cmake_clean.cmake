file(REMOVE_RECURSE
  "CMakeFiles/bench_copypaste.dir/bench/bench_copypaste.cpp.o"
  "CMakeFiles/bench_copypaste.dir/bench/bench_copypaste.cpp.o.d"
  "bench/bench_copypaste"
  "bench/bench_copypaste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copypaste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

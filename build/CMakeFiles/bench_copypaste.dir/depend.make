# Empty dependencies file for bench_copypaste.
# This may be replaced when dependencies are built.

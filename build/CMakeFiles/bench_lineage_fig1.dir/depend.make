# Empty dependencies file for bench_lineage_fig1.
# This may be replaced when dependencies are built.

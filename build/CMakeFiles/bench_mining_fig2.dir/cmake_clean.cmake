file(REMOVE_RECURSE
  "CMakeFiles/bench_mining_fig2.dir/bench/bench_mining_fig2.cpp.o"
  "CMakeFiles/bench_mining_fig2.dir/bench/bench_mining_fig2.cpp.o.d"
  "bench/bench_mining_fig2"
  "bench/bench_mining_fig2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mining_fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_folders.dir/bench/bench_folders.cpp.o"
  "CMakeFiles/bench_folders.dir/bench/bench_folders.cpp.o.d"
  "bench/bench_folders"
  "bench/bench_folders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_folders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

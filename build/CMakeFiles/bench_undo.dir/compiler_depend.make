# Empty compiler generated dependencies file for bench_undo.
# This may be replaced when dependencies are built.

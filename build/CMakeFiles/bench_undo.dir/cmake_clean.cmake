file(REMOVE_RECURSE
  "CMakeFiles/bench_undo.dir/bench/bench_undo.cpp.o"
  "CMakeFiles/bench_undo.dir/bench/bench_undo.cpp.o.d"
  "bench/bench_undo"
  "bench/bench_undo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_undo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

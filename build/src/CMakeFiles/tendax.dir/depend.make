# Empty dependencies file for tendax.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tendax.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtendax.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collab/editor.cc" "src/CMakeFiles/tendax.dir/collab/editor.cc.o" "gcc" "src/CMakeFiles/tendax.dir/collab/editor.cc.o.d"
  "/root/repo/src/collab/session_manager.cc" "src/CMakeFiles/tendax.dir/collab/session_manager.cc.o" "gcc" "src/CMakeFiles/tendax.dir/collab/session_manager.cc.o.d"
  "/root/repo/src/collab/undo_manager.cc" "src/CMakeFiles/tendax.dir/collab/undo_manager.cc.o" "gcc" "src/CMakeFiles/tendax.dir/collab/undo_manager.cc.o.d"
  "/root/repo/src/collab/wire.cc" "src/CMakeFiles/tendax.dir/collab/wire.cc.o" "gcc" "src/CMakeFiles/tendax.dir/collab/wire.cc.o.d"
  "/root/repo/src/core/tendax.cc" "src/CMakeFiles/tendax.dir/core/tendax.cc.o" "gcc" "src/CMakeFiles/tendax.dir/core/tendax.cc.o.d"
  "/root/repo/src/db/bptree.cc" "src/CMakeFiles/tendax.dir/db/bptree.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/bptree.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/tendax.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/tendax.dir/db/database.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/database.cc.o.d"
  "/root/repo/src/db/heap_table.cc" "src/CMakeFiles/tendax.dir/db/heap_table.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/heap_table.cc.o.d"
  "/root/repo/src/db/query.cc" "src/CMakeFiles/tendax.dir/db/query.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/query.cc.o.d"
  "/root/repo/src/db/record.cc" "src/CMakeFiles/tendax.dir/db/record.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/record.cc.o.d"
  "/root/repo/src/db/recovery.cc" "src/CMakeFiles/tendax.dir/db/recovery.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/recovery.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/tendax.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/schema.cc.o.d"
  "/root/repo/src/db/slotted_page.cc" "src/CMakeFiles/tendax.dir/db/slotted_page.cc.o" "gcc" "src/CMakeFiles/tendax.dir/db/slotted_page.cc.o.d"
  "/root/repo/src/document/document_model.cc" "src/CMakeFiles/tendax.dir/document/document_model.cc.o" "gcc" "src/CMakeFiles/tendax.dir/document/document_model.cc.o.d"
  "/root/repo/src/document/templates.cc" "src/CMakeFiles/tendax.dir/document/templates.cc.o" "gcc" "src/CMakeFiles/tendax.dir/document/templates.cc.o.d"
  "/root/repo/src/folders/folders.cc" "src/CMakeFiles/tendax.dir/folders/folders.cc.o" "gcc" "src/CMakeFiles/tendax.dir/folders/folders.cc.o.d"
  "/root/repo/src/lineage/lineage.cc" "src/CMakeFiles/tendax.dir/lineage/lineage.cc.o" "gcc" "src/CMakeFiles/tendax.dir/lineage/lineage.cc.o.d"
  "/root/repo/src/meta/meta_store.cc" "src/CMakeFiles/tendax.dir/meta/meta_store.cc.o" "gcc" "src/CMakeFiles/tendax.dir/meta/meta_store.cc.o.d"
  "/root/repo/src/mining/mining.cc" "src/CMakeFiles/tendax.dir/mining/mining.cc.o" "gcc" "src/CMakeFiles/tendax.dir/mining/mining.cc.o.d"
  "/root/repo/src/search/search_engine.cc" "src/CMakeFiles/tendax.dir/search/search_engine.cc.o" "gcc" "src/CMakeFiles/tendax.dir/search/search_engine.cc.o.d"
  "/root/repo/src/security/access_control.cc" "src/CMakeFiles/tendax.dir/security/access_control.cc.o" "gcc" "src/CMakeFiles/tendax.dir/security/access_control.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tendax.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tendax.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/tendax.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/tendax.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/tendax.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/tendax.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/tendax.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/tendax.dir/storage/wal.cc.o.d"
  "/root/repo/src/text/char_list.cc" "src/CMakeFiles/tendax.dir/text/char_list.cc.o" "gcc" "src/CMakeFiles/tendax.dir/text/char_list.cc.o.d"
  "/root/repo/src/text/diff.cc" "src/CMakeFiles/tendax.dir/text/diff.cc.o" "gcc" "src/CMakeFiles/tendax.dir/text/diff.cc.o.d"
  "/root/repo/src/text/text_store.cc" "src/CMakeFiles/tendax.dir/text/text_store.cc.o" "gcc" "src/CMakeFiles/tendax.dir/text/text_store.cc.o.d"
  "/root/repo/src/text/utf8.cc" "src/CMakeFiles/tendax.dir/text/utf8.cc.o" "gcc" "src/CMakeFiles/tendax.dir/text/utf8.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/tendax.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/tendax.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/CMakeFiles/tendax.dir/txn/txn_manager.cc.o" "gcc" "src/CMakeFiles/tendax.dir/txn/txn_manager.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/tendax.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/tendax.dir/util/clock.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/tendax.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/tendax.dir/util/coding.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/tendax.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/tendax.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tendax.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tendax.dir/util/status.cc.o.d"
  "/root/repo/src/workflow/workflow_engine.cc" "src/CMakeFiles/tendax.dir/workflow/workflow_engine.cc.o" "gcc" "src/CMakeFiles/tendax.dir/workflow/workflow_engine.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/tendax.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/tendax.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

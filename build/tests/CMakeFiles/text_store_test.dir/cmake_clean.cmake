file(REMOVE_RECURSE
  "CMakeFiles/text_store_test.dir/text_store_test.cpp.o"
  "CMakeFiles/text_store_test.dir/text_store_test.cpp.o.d"
  "text_store_test"
  "text_store_test.pdb"
  "text_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for text_store_test.
# This may be replaced when dependencies are built.

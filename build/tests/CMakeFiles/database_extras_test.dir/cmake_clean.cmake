file(REMOVE_RECURSE
  "CMakeFiles/database_extras_test.dir/database_extras_test.cpp.o"
  "CMakeFiles/database_extras_test.dir/database_extras_test.cpp.o.d"
  "database_extras_test"
  "database_extras_test.pdb"
  "database_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for document_model_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/document_model_test.dir/document_model_test.cpp.o"
  "CMakeFiles/document_model_test.dir/document_model_test.cpp.o.d"
  "document_model_test"
  "document_model_test.pdb"
  "document_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/folders_test.dir/folders_test.cpp.o"
  "CMakeFiles/folders_test.dir/folders_test.cpp.o.d"
  "folders_test"
  "folders_test.pdb"
  "folders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for folders_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/collab_test.dir/collab_test.cpp.o"
  "CMakeFiles/collab_test.dir/collab_test.cpp.o.d"
  "collab_test"
  "collab_test.pdb"
  "collab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for collab_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bptree_test[1]_include.cmake")
include("/root/repo/build/tests/collab_test[1]_include.cmake")
include("/root/repo/build/tests/database_extras_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/document_model_test[1]_include.cmake")
include("/root/repo/build/tests/folders_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lineage_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/text_store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
